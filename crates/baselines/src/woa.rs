//! Whale Optimization Algorithm baseline (paper §VI-B, refs. \[25\], \[26\]).
//!
//! WOA (Mirjalili & Lewis, 2016) is a continuous population metaheuristic
//! imitating humpback bubble-net hunting: each *whale* updates its position
//! by encircling the best-known prey (`|A| < 1`), spiralling towards it, or
//! exploring around a random peer (`|A| ≥ 1`). MVCom is binary, so we use
//! the standard *binary WOA* construction: whales live in `ℝ^|I|`, and a
//! sigmoid transfer function maps each coordinate to a selection
//! probability before feasibility repair. The continuous-to-binary mapping
//! is exactly why WOA trails the purpose-built solvers in the paper's
//! Figs. 10–14 — the search geometry does not match the combinatorial
//! neighborhood.

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_core::{Instance, Solution};
use mvcom_types::{Error, Result};

use crate::{Solver, SolverOutcome};

/// WOA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WoaConfig {
    /// Population size (number of whales).
    pub population: usize,
    /// Iteration budget.
    pub iterations: u64,
    /// Spiral shape constant `b` in `e^{bl}·cos(2πl)`.
    pub spiral_b: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WoaConfig {
    /// Defaults comparable to common WOA settings (30 whales).
    pub fn paper(seed: u64) -> WoaConfig {
        WoaConfig {
            population: 30,
            iterations: 3_000,
            spiral_b: 1.0,
            seed,
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if self.population < 2 {
            return Err(Error::invalid_config(
                "population",
                "need at least two whales",
            ));
        }
        if self.iterations == 0 {
            return Err(Error::invalid_config("iterations", "must be positive"));
        }
        if !self.spiral_b.is_finite() || self.spiral_b <= 0.0 {
            return Err(Error::invalid_config("spiral_b", "must be positive"));
        }
        Ok(())
    }
}

/// The binary Whale Optimization solver.
///
/// # Example
///
/// ```
/// use mvcom_baselines::{woa::WoaConfig, Solver, WoaSolver};
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let instance = InstanceBuilder::new()
///     .alpha(1.5).capacity(700).n_min(2)
///     .shards((0..8).map(|i| ShardInfo::new(
///         CommitteeId(i), 100,
///         TwoPhaseLatency::from_total(SimTime::from_secs(300.0 + 30.0 * f64::from(i))),
///     )).collect())
///     .build()?;
/// let config = WoaConfig { iterations: 200, ..WoaConfig::paper(1) };
/// let outcome = WoaSolver::new(config).solve(&instance)?;
/// assert!(instance.is_feasible(&outcome.best_solution));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WoaSolver {
    config: WoaConfig,
}

impl WoaSolver {
    /// Creates a solver with the given parameters.
    pub fn new(config: WoaConfig) -> WoaSolver {
        WoaSolver { config }
    }

    /// Binarizes a continuous position and repairs it to feasibility:
    /// sigmoid-threshold each coordinate, drop the lowest-scoring selected
    /// shards while over capacity, then add the highest-scoring unselected
    /// shards that fit until `N_min`.
    fn decode<R: Rng + ?Sized>(
        position: &[f64],
        instance: &Instance,
        rng: &mut R,
    ) -> Option<Solution> {
        let n = instance.len();
        let mut scored: Vec<(usize, f64)> = position
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, 1.0 / (1.0 + (-x).exp())))
            .collect();
        let mut solution = Solution::empty(n);
        for &(i, p) in &scored {
            if rng.gen::<f64>() < p {
                solution.insert(i, instance);
            }
        }
        // Repair capacity: drop the lowest-probability members first.
        mvcom_types::sort_by_f64(&mut scored, |s| s.1);
        for &(i, _) in &scored {
            if solution.tx_total() <= instance.capacity() {
                break;
            }
            if solution.contains(i) {
                solution.remove(i, instance);
            }
        }
        // Repair N_min: add the highest-probability non-members that fit.
        for &(i, _) in scored.iter().rev() {
            if solution.selected_count() >= instance.n_min() {
                break;
            }
            if !solution.contains(i)
                && solution.tx_total() + instance.shards()[i].tx_count() <= instance.capacity()
            {
                solution.insert(i, instance);
            }
        }
        instance.is_feasible(&solution).then_some(solution)
    }
}

impl Solver for WoaSolver {
    fn name(&self) -> &'static str {
        "woa"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        self.config.validate()?;
        let mut rng = mvcom_simnet::rng::master(self.config.seed);
        let n = instance.len();
        let pop = self.config.population;

        // Initialize whale positions in [-1, 1]^n.
        let mut whales: Vec<Vec<f64>> = (0..pop)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();

        // lint: allow(P1, validate() requires population >= 2, so whales is non-empty)
        let mut best_position = whales[0].clone();
        let mut best_solution: Option<Solution> = None;
        let mut best_utility = f64::NEG_INFINITY;
        let mut trajectory = Vec::with_capacity(self.config.iterations as usize + 1);

        let evaluate = |position: &[f64],
                        rng: &mut mvcom_simnet::SimRng,
                        best_position: &mut Vec<f64>,
                        best_solution: &mut Option<Solution>,
                        best_utility: &mut f64| {
            if let Some(sol) = Self::decode(position, instance, rng) {
                let u = instance.utility(&sol);
                if u > *best_utility {
                    *best_utility = u;
                    *best_solution = Some(sol);
                    *best_position = position.to_vec();
                }
            }
        };

        for whale in &whales {
            evaluate(
                whale,
                &mut rng,
                &mut best_position,
                &mut best_solution,
                &mut best_utility,
            );
        }
        trajectory.push((0u64, best_utility));

        for iter in 1..=self.config.iterations {
            // a decreases linearly 2 → 0 over the run (exploration →
            // exploitation), per the original WOA.
            let a = 2.0 * (1.0 - iter as f64 / self.config.iterations as f64);
            for w in 0..pop {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                let big_a = 2.0 * a * r1 - a;
                let big_c = 2.0 * r2;
                let p: f64 = rng.gen();
                let next: Vec<f64> = if p < 0.5 {
                    if big_a.abs() < 1.0 {
                        // Encircle the best-known prey.
                        (0..n)
                            .map(|d| {
                                let dist = (big_c * best_position[d] - whales[w][d]).abs();
                                best_position[d] - big_a * dist
                            })
                            .collect()
                    } else {
                        // Explore around a random peer.
                        let peer = rng.gen_range(0..pop);
                        (0..n)
                            .map(|d| {
                                let dist = (big_c * whales[peer][d] - whales[w][d]).abs();
                                whales[peer][d] - big_a * dist
                            })
                            .collect()
                    }
                } else {
                    // Spiral bubble-net attack.
                    let l: f64 = rng.gen_range(-1.0..1.0);
                    (0..n)
                        .map(|d| {
                            let dist = (best_position[d] - whales[w][d]).abs();
                            dist * (self.config.spiral_b * l).exp()
                                * (2.0 * std::f64::consts::PI * l).cos()
                                + best_position[d]
                        })
                        .collect()
                };
                // Clamp to keep the sigmoid responsive.
                let next: Vec<f64> = next.into_iter().map(|x| x.clamp(-6.0, 6.0)).collect();
                evaluate(
                    &next,
                    &mut rng,
                    &mut best_position,
                    &mut best_solution,
                    &mut best_utility,
                );
                whales[w] = next;
            }
            trajectory.push((iter, best_utility));
        }

        let best_solution = best_solution
            .ok_or_else(|| Error::infeasible("WOA never decoded a feasible solution"))?;
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_utility,
            best_solution,
            trajectory,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::test_support::{instance, tiny};

    fn quick(seed: u64) -> WoaConfig {
        WoaConfig {
            iterations: 300,
            ..WoaConfig::paper(seed)
        }
    }

    #[test]
    fn produces_feasible_solutions() {
        for seed in 0..4 {
            let inst = instance(25, seed);
            let outcome = WoaSolver::new(quick(seed)).solve(&inst).unwrap();
            check_outcome(&inst, &outcome).unwrap();
        }
    }

    #[test]
    fn never_beats_the_exhaustive_optimum() {
        let inst = tiny();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        let woa = WoaSolver::new(quick(1)).solve(&inst).unwrap();
        assert!(woa.best_utility <= exact.best_utility + 1e-9);
    }

    #[test]
    fn trajectory_is_monotone_best_so_far() {
        let inst = instance(20, 2);
        let outcome = WoaSolver::new(quick(2)).solve(&inst).unwrap();
        for w in outcome.trajectory.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
        assert_eq!(outcome.trajectory.len() as u64, quick(2).iterations + 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance(15, 3);
        let a = WoaSolver::new(quick(9)).solve(&inst).unwrap();
        let b = WoaSolver::new(quick(9)).solve(&inst).unwrap();
        assert_eq!(a.best_solution, b.best_solution);
        assert_eq!(a.best_utility, b.best_utility);
    }

    #[test]
    fn config_validation() {
        assert!(WoaConfig {
            population: 1,
            ..WoaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(WoaConfig {
            iterations: 0,
            ..WoaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(WoaConfig {
            spiral_b: 0.0,
            ..WoaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(WoaConfig::paper(0).validate().is_ok());
    }
}
