//! Exact branch-and-bound solver — ground truth beyond the exhaustive
//! solver's 26-shard limit.
//!
//! Depth-first search over take/skip decisions in value-density order,
//! pruned by the fractional-knapsack (LP relaxation) upper bound. The
//! `N_min` constraint is handled with feasibility pruning: a node dies
//! when the remaining items cannot lift the count to `N_min` within the
//! capacity. Exact for the separable [`DdlPolicy::MaxArrival`] objective;
//! practical to ~60 shards (instance-dependent).

use mvcom_core::{DdlPolicy, Instance, Solution};
use mvcom_types::{Error, Result};

use crate::{Solver, SolverOutcome};

/// Branch-and-bound parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbConfig {
    /// Abort after exploring this many nodes (exactness guard; the solver
    /// errs rather than silently returning a heuristic answer).
    pub max_nodes: u64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 20_000_000,
        }
    }
}

/// The exact branch-and-bound solver.
///
/// # Example
///
/// ```
/// use mvcom_baselines::{branch_and_bound::BnbSolver, Solver};
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let instance = InstanceBuilder::new()
///     .alpha(2.0).capacity(400).n_min(2)
///     .shards((0..10).map(|i| ShardInfo::new(
///         CommitteeId(i), 60 + u64::from(i) * 7,
///         TwoPhaseLatency::from_total(SimTime::from_secs(100.0 + 9.0 * f64::from(i))),
///     )).collect())
///     .build()?;
/// let outcome = BnbSolver::default().solve(&instance)?;
/// assert!(instance.is_feasible(&outcome.best_solution));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BnbSolver {
    config: BnbConfig,
}

impl BnbSolver {
    /// Creates a solver with an explicit node budget.
    pub fn new(config: BnbConfig) -> BnbSolver {
        BnbSolver { config }
    }
}

struct SearchState<'a> {
    values: &'a [f64],
    weights: &'a [u64],
    /// Suffix minima of weights, for the N_min feasibility prune.
    suffix_min_weight: &'a [u64],
    capacity: u64,
    n_min: usize,
    n: usize,
    best_value: f64,
    best_set: Vec<bool>,
    nodes: u64,
    max_nodes: u64,
    exhausted: bool,
}

impl SearchState<'_> {
    /// Fractional-knapsack upper bound on the value attainable from item
    /// `from` onward with `remaining` capacity (items are density-sorted,
    /// negative-value items contribute 0 — dropping the `N_min` constraint
    /// and integrality can only increase the optimum, so this is a valid
    /// upper bound).
    fn upper_bound(&self, from: usize, remaining: u64) -> f64 {
        let mut bound = 0.0;
        let mut cap = remaining;
        for i in from..self.n {
            if self.values[i] <= 0.0 {
                break; // density-sorted: the rest are non-positive too
            }
            if self.weights[i] <= cap {
                bound += self.values[i];
                cap -= self.weights[i];
            } else {
                bound += self.values[i] * cap as f64 / self.weights[i] as f64;
                break;
            }
        }
        bound
    }

    fn dfs(&mut self, idx: usize, value: f64, weight: u64, count: usize, picked: &mut Vec<bool>) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = true;
            return;
        }
        if self.exhausted {
            return;
        }
        if idx == self.n {
            if count >= self.n_min && value > self.best_value {
                self.best_value = value;
                self.best_set = picked.clone();
            }
            return;
        }
        // Feasibility prunes.
        let remaining_items = self.n - idx;
        if count + remaining_items < self.n_min {
            return; // cannot reach N_min
        }
        if self.n_min > count {
            // Necessary condition: even `needed` copies of the lightest
            // remaining item must fit (suffix-min underestimates the true
            // requirement, so this only prunes provably dead branches).
            let needed = (self.n_min - count) as u64;
            if weight.saturating_add(self.suffix_min_weight[idx].saturating_mul(needed))
                > self.capacity
            {
                return;
            }
        }
        // Bound prune: the LP-relaxation bound is valid for any completion
        // (forced N_min picks can only lower the achieved value).
        if value + self.upper_bound(idx, self.capacity - weight) <= self.best_value {
            return;
        }

        // Branch 1: take item idx (if it fits).
        if weight + self.weights[idx] <= self.capacity {
            picked[idx] = true;
            self.dfs(
                idx + 1,
                value + self.values[idx],
                weight + self.weights[idx],
                count + 1,
                picked,
            );
            picked[idx] = false;
        }
        // Branch 2: skip item idx.
        self.dfs(idx + 1, value, weight, count, picked);
    }
}

impl Solver for BnbSolver {
    fn name(&self) -> &'static str {
        "bnb"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        if instance.ddl_policy() != DdlPolicy::MaxArrival {
            return Err(Error::invalid_instance(
                "branch-and-bound requires the separable MaxArrival objective",
            ));
        }
        let n = instance.len();
        // Density order (value per weight, descending); ties by index for
        // determinism.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let da = instance.marginal_utility(a) / instance.shards()[a].tx_count().max(1) as f64;
            let db = instance.marginal_utility(b) / instance.shards()[b].tx_count().max(1) as f64;
            db.total_cmp(&da).then(a.cmp(&b))
        });
        let values: Vec<f64> = order
            .iter()
            .map(|&i| instance.marginal_utility(i))
            .collect();
        let weights: Vec<u64> = order
            .iter()
            .map(|&i| instance.shards()[i].tx_count())
            .collect();
        let mut suffix_min_weight = vec![u64::MAX; n + 1];
        for i in (0..n).rev() {
            suffix_min_weight[i] = suffix_min_weight[i + 1].min(weights[i]);
        }
        let mut state = SearchState {
            values: &values,
            weights: &weights,
            suffix_min_weight: &suffix_min_weight,
            capacity: instance.capacity(),
            n_min: instance.n_min(),
            n,
            best_value: f64::NEG_INFINITY,
            best_set: vec![false; n],
            nodes: 0,
            max_nodes: self.config.max_nodes,
            exhausted: false,
        };
        let mut picked = vec![false; n];
        state.dfs(0, 0.0, 0, 0, &mut picked);
        if state.exhausted {
            return Err(Error::NotConverged {
                iterations: state.nodes,
            });
        }
        if state.best_value == f64::NEG_INFINITY {
            return Err(Error::infeasible("no selection satisfies the constraints"));
        }
        let indices = state
            .best_set
            .iter()
            .enumerate()
            .filter(|(_, &take)| take)
            .map(|(k, _)| order[k]);
        let best_solution = Solution::from_indices(n, indices, instance);
        debug_assert!(instance.is_feasible(&best_solution));
        let best_utility = instance.utility(&best_solution);
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_utility,
            best_solution,
            trajectory: vec![(0, best_utility)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::test_support::{instance, tiny};

    #[test]
    fn matches_exhaustive_on_small_instances() {
        for seed in 0..6 {
            let inst = instance(14, seed);
            let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
            let bnb = BnbSolver::default().solve(&inst).unwrap();
            check_outcome(&inst, &bnb).unwrap();
            assert!(
                (bnb.best_utility - exact.best_utility).abs() < 1e-6,
                "seed {seed}: bnb {} vs exhaustive {}",
                bnb.best_utility,
                exact.best_utility
            );
        }
    }

    #[test]
    fn handles_medium_instances_beyond_exhaustive_reach() {
        let inst = instance(45, 3);
        let bnb = BnbSolver::default().solve(&inst).unwrap();
        check_outcome(&inst, &bnb).unwrap();
        // Must dominate the greedy heuristic.
        let greedy = crate::greedy::GreedySolver::new().solve(&inst).unwrap();
        assert!(bnb.best_utility >= greedy.best_utility - 1e-9);
        // And the bucketed DP.
        let dp = crate::dp::DpSolver::default().solve(&inst).unwrap();
        assert!(bnb.best_utility >= dp.best_utility - 1e-9);
    }

    #[test]
    fn respects_n_min_with_negative_marginals() {
        use mvcom_core::problem::InstanceBuilder;
        use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
        // All marginals negative, N_min forces 3 picks: the optimum is the
        // three least-bad shards that fit.
        let shards: Vec<ShardInfo> = (0..6)
            .map(|i| {
                ShardInfo::new(
                    CommitteeId(i),
                    100,
                    TwoPhaseLatency::from_total(SimTime::from_secs(f64::from(i) * 200.0)),
                )
            })
            .collect();
        let inst = InstanceBuilder::new()
            .alpha(0.01)
            .capacity(1_000)
            .n_min(3)
            .shards(shards)
            .build()
            .unwrap();
        let bnb = BnbSolver::default().solve(&inst).unwrap();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        assert!((bnb.best_utility - exact.best_utility).abs() < 1e-9);
        assert_eq!(bnb.best_solution.selected_count(), 3);
    }

    #[test]
    fn node_budget_errors_rather_than_lying() {
        let inst = instance(30, 1);
        let starved = BnbSolver::new(BnbConfig { max_nodes: 10 });
        assert!(matches!(
            starved.solve(&inst),
            Err(mvcom_types::Error::NotConverged { .. })
        ));
    }

    #[test]
    fn tiny_instance_agreement() {
        let inst = tiny();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        let bnb = BnbSolver::default().solve(&inst).unwrap();
        assert!((bnb.best_utility - exact.best_utility).abs() < 1e-6);
    }
}
