//! Baseline solvers for the MVCom committee-scheduling problem.
//!
//! The paper (§VI-B) compares its Stochastic-Exploration algorithm against
//! three baselines, all implemented here over the same
//! [`Instance`] model so utilities are directly
//! comparable:
//!
//! * [`sa`] — **Simulated Annealing**: Metropolis acceptance over the same
//!   swap/insert/remove neighborhood, geometric cooling.
//! * [`dp`] — **Dynamic Programming**: the classical 0/1-knapsack DP over
//!   bucketed capacity; exact on the separable relaxation but blind to the
//!   `N_min` constraint until a repair pass, and quantized by the bucket
//!   granularity — which is exactly why the paper observes it trailing SE.
//! * [`sparse_dp`] — the same knapsack relaxation with dominant-state
//!   (Pareto-frontier) pruning and a bit-packed reconstruction table; the
//!   drop-in replacement for the dense `O(|I|·Ĉ)` table at
//!   `|I| = 10⁴–10⁵`, differentially tested against [`dp`].
//! * [`woa`] — **Whale Optimization Algorithm** (Mirjalili & Lewis 2016):
//!   a binary variant using a sigmoid transfer function, with feasibility
//!   repair.
//!
//! Three reference solvers support testing and calibration:
//!
//! * [`greedy`] — density-greedy selection, the natural lower bar.
//! * [`exhaustive`] — exact optimum by enumeration (≤ 26 shards), the
//!   ground truth for property tests.
//! * [`branch_and_bound`] — exact optimum via LP-bounded DFS, the ground
//!   truth for medium instances (~40–60 shards) beyond enumeration reach.
//!
//! Every solver implements the [`Solver`] trait and records a best-so-far
//! trajectory, so the figure harness can overlay convergence curves of SE
//! and all baselines (paper Figs. 11–14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod branch_and_bound;
pub mod dp;
pub mod exhaustive;
pub mod greedy;
pub mod sa;
pub mod sparse_dp;
pub mod woa;

use mvcom_core::{Instance, Solution};
use mvcom_types::Result;
use serde::{Deserialize, Serialize};

pub use branch_and_bound::BnbSolver;
pub use dp::DpSolver;
pub use exhaustive::ExhaustiveSolver;
pub use greedy::GreedySolver;
pub use sa::SaSolver;
pub use sparse_dp::SparseDpSolver;
pub use woa::WoaSolver;

/// The result of one solver run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverOutcome {
    /// Short machine-readable solver name (`"sa"`, `"dp"`, ...).
    pub solver: String,
    /// The best feasible solution found.
    pub best_solution: Solution,
    /// Its utility.
    pub best_utility: f64,
    /// `(iteration, best-so-far utility)` samples for convergence plots.
    /// One-shot solvers (DP, greedy) report a single point.
    pub trajectory: Vec<(u64, f64)>,
}

/// A solver of the MVCom problem.
///
/// Implementations must return a solution satisfying both constraints
/// (`Σx ≥ N_min`, `Σx·s ≤ Ĉ`) or an error — never an infeasible "best
/// effort".
pub trait Solver {
    /// Solver name used in figures and logs.
    fn name(&self) -> &'static str;

    /// Solves `instance`.
    ///
    /// # Errors
    ///
    /// Implementation-specific; all return [`mvcom_types::Error`] variants
    /// (infeasibility, invalid configuration, non-convergence).
    fn solve(&self, instance: &Instance) -> Result<SolverOutcome>;
}

/// Runs `solver` and replays its convergence trajectory into `obs` as
/// `solver_point` events (sampled at ~50 points per run, endpoints always
/// included), closing with one `solver_done` event. The clock of these
/// events is the solver's iteration index. Emission happens after the
/// solve, so telemetry can never perturb a solver's RNG stream.
///
/// # Errors
///
/// Whatever [`Solver::solve`] returns.
pub fn solve_observed(
    solver: &dyn Solver,
    instance: &Instance,
    obs: &mvcom_obs::Obs,
) -> Result<SolverOutcome> {
    let outcome = solver.solve(instance)?;
    if obs.enabled(mvcom_obs::ObsLevel::Events) {
        let stride = (outcome.trajectory.len() / 50).max(1);
        let last = outcome.trajectory.len().saturating_sub(1);
        for (i, &(iter, best)) in outcome.trajectory.iter().enumerate() {
            if i % stride != 0 && i != last {
                continue;
            }
            obs.emit(
                "solver_point",
                iter as f64,
                &[
                    ("solver", mvcom_obs::Value::from(outcome.solver.as_str())),
                    ("iter", mvcom_obs::Value::U64(iter)),
                    ("best", mvcom_obs::Value::F64(best)),
                ],
            );
        }
        let iters = outcome.trajectory.last().map_or(0, |&(iter, _)| iter);
        obs.emit(
            "solver_done",
            iters as f64,
            &[
                ("solver", mvcom_obs::Value::from(outcome.solver.as_str())),
                ("iters", mvcom_obs::Value::U64(iters)),
                ("best", mvcom_obs::Value::F64(outcome.best_utility)),
            ],
        );
    }
    Ok(outcome)
}

/// Validates a solver outcome against an instance — shared test helper.
pub fn check_outcome(instance: &Instance, outcome: &SolverOutcome) -> Result<()> {
    if !instance.is_feasible(&outcome.best_solution) {
        return Err(mvcom_types::Error::infeasible(format!(
            "{} returned an infeasible solution",
            outcome.solver
        )));
    }
    let recomputed = instance.utility(&outcome.best_solution);
    if (recomputed - outcome.best_utility).abs() > 1e-6 * (1.0 + recomputed.abs()) {
        return Err(mvcom_types::Error::invalid_instance(format!(
            "{} reported utility {} but the solution evaluates to {recomputed}",
            outcome.solver, outcome.best_utility
        )));
    }
    Ok(())
}

#[cfg(test)]
mod observed_tests {
    use super::test_support::{instance, tiny};
    use super::*;
    use mvcom_obs::{Obs, ObsLevel};

    #[test]
    fn observed_solve_matches_plain_solve_and_emits_points() {
        let inst = instance(20, 3);
        let solver = SaSolver::new(sa::SaConfig::paper(5));
        let (obs, buf) = Obs::memory(ObsLevel::Events);
        let observed = solve_observed(&solver, &inst, &obs).unwrap();
        let plain = solver.solve(&inst).unwrap();
        assert_eq!(observed, plain, "telemetry must not perturb the solver");
        let text = buf.contents();
        assert!(text.contains("\"kind\":\"solver_point\""));
        assert!(text.contains("\"kind\":\"solver_done\""));
        assert!(text.contains("\"solver\":\"sa\""));
        assert_eq!(obs.invalid_dropped(), 0);
        let points = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"solver_point\""))
            .count();
        assert!((2..=60).contains(&points), "sampled to ~50, got {points}");
    }

    #[test]
    fn one_shot_solvers_emit_a_single_point() {
        let inst = tiny();
        let (obs, buf) = Obs::memory(ObsLevel::Events);
        solve_observed(&GreedySolver::new(), &inst, &obs).unwrap();
        let text = buf.contents();
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"kind\":\"solver_point\""))
                .count(),
            1
        );
        assert!(text.contains("\"kind\":\"solver_done\""));
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use mvcom_core::problem::InstanceBuilder;
    use mvcom_core::Instance;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    /// A reproducible medium instance with an active capacity constraint.
    pub fn instance(n: usize, seed_shift: u64) -> Instance {
        InstanceBuilder::new()
            .alpha(1.5)
            .capacity((n as u64) * 110)
            .n_min(n / 3)
            .shards(
                (0..n)
                    .map(|i| {
                        let k = i as u64 + seed_shift;
                        ShardInfo::new(
                            CommitteeId(i as u32),
                            70 + (k * 37) % 120,
                            TwoPhaseLatency::from_total(SimTime::from_secs(
                                300.0 + ((k * 97) % 800) as f64,
                            )),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap()
    }

    /// A tiny instance whose optimum is enumerable.
    pub fn tiny() -> Instance {
        instance(10, 0)
    }
}
