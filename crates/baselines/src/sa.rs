//! Simulated Annealing baseline (paper §VI-B, ref. \[22\]).

use rand::Rng;
use serde::{Deserialize, Serialize};

use mvcom_core::{EvalCache, Instance, Solution};
use mvcom_types::{Error, Result};

use crate::{Solver, SolverOutcome};

/// Simulated-annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Initial temperature. Accept probability of a move with `ΔU < 0` is
    /// `exp(ΔU / T)`, so `T` is measured in utility units.
    pub t0: f64,
    /// Geometric cooling factor per iteration, `T ← cooling·T`.
    pub cooling: f64,
    /// Iteration budget.
    pub iterations: u64,
    /// Temperature floor; cooling stops here so late iterations still
    /// escape plateaus occasionally.
    pub t_min: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SaConfig {
    /// Defaults calibrated to the paper's utility scales (`T₀` of a few
    /// thousand — the magnitude of one shard's marginal utility).
    pub fn paper(seed: u64) -> SaConfig {
        SaConfig {
            t0: 2_000.0,
            cooling: 0.995,
            iterations: 3_000,
            t_min: 1.0,
            seed,
        }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if !(self.t0.is_finite() && self.t0 > 0.0) {
            return Err(Error::invalid_config("t0", "must be positive"));
        }
        if !(0.0 < self.cooling && self.cooling < 1.0) {
            return Err(Error::invalid_config("cooling", "must be in (0, 1)"));
        }
        if self.iterations == 0 {
            return Err(Error::invalid_config("iterations", "must be positive"));
        }
        if !(self.t_min.is_finite() && self.t_min > 0.0 && self.t_min <= self.t0) {
            return Err(Error::invalid_config(
                "t_min",
                "must satisfy 0 < t_min <= t0",
            ));
        }
        Ok(())
    }
}

/// The Simulated Annealing solver.
///
/// Explores the same neighborhood as the SE engine — swap one admitted
/// shard for one excluded shard — plus *insert* and *remove* moves so the
/// cardinality is not frozen by the initial state. Moves violating either
/// constraint are rejected outright; worsening feasible moves are accepted
/// with the Metropolis probability `exp(ΔU/T)`.
///
/// # Example
///
/// ```
/// use mvcom_baselines::{sa::SaConfig, SaSolver, Solver};
/// use mvcom_core::problem::InstanceBuilder;
/// use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};
///
/// # fn main() -> Result<(), mvcom_types::Error> {
/// let instance = InstanceBuilder::new()
///     .alpha(1.5).capacity(900).n_min(2)
///     .shards((0..10).map(|i| ShardInfo::new(
///         CommitteeId(i), 100,
///         TwoPhaseLatency::from_total(SimTime::from_secs(400.0 + 20.0 * f64::from(i))),
///     )).collect())
///     .build()?;
/// let outcome = SaSolver::new(SaConfig::paper(1)).solve(&instance)?;
/// assert!(instance.is_feasible(&outcome.best_solution));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SaSolver {
    config: SaConfig,
}

impl SaSolver {
    /// Creates a solver with the given parameters.
    pub fn new(config: SaConfig) -> SaSolver {
        SaSolver { config }
    }
}

enum Move {
    Swap(usize, usize),
    Insert(usize),
    Remove(usize),
}

impl Solver for SaSolver {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        self.config.validate()?;
        let mut rng = mvcom_simnet::rng::master(self.config.seed);
        let n = instance.len();

        // Initial state: greedy-ish random — N_min smallest shards plus
        // whatever random extras fit.
        let mut by_size: Vec<usize> = (0..n).collect();
        by_size.sort_by_key(|&i| instance.shards()[i].tx_count());
        let mut current = Solution::empty(n);
        for &i in by_size.iter().take(instance.n_min().max(1).min(n)) {
            current.insert(i, instance);
        }
        if !instance.is_feasible(&current) {
            return Err(Error::infeasible(
                "no initial SA state satisfies the constraints",
            ));
        }
        // Incremental evaluator: O(log n) move pricing without cloning the
        // solution, even under the non-separable MaxSelected deadline.
        let mut cache = EvalCache::new(instance, &current);
        let mut current_u = instance.utility(&current);
        let mut best = current.clone();
        let mut best_u = current_u;
        let mut trajectory = vec![(0u64, best_u)];
        let mut temperature = self.config.t0;

        for iter in 1..=self.config.iterations {
            let mv = propose_move(&current, instance, &mut rng);
            if let Some(mv) = mv {
                let delta = match &mv {
                    Move::Swap(out, inc) => cache.swap_delta(instance, &current, *out, *inc),
                    Move::Insert(inc) => cache.insert_delta(instance, &current, *inc),
                    Move::Remove(out) => cache.remove_delta(instance, &current, *out),
                };
                let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temperature).exp();
                if accept {
                    match mv {
                        Move::Swap(out, inc) => {
                            current.swap(out, inc, instance);
                            cache.swap(out, inc);
                        }
                        Move::Insert(inc) => {
                            current.insert(inc, instance);
                            cache.insert(inc);
                        }
                        Move::Remove(out) => {
                            current.remove(out, instance);
                            cache.remove(out);
                        }
                    }
                    current_u += delta;
                    if current_u > best_u && instance.is_feasible(&current) {
                        best_u = current_u;
                        best = current.clone();
                    }
                }
            }
            temperature = (temperature * self.config.cooling).max(self.config.t_min);
            trajectory.push((iter, best_u));
        }
        // Exact re-evaluation guards against drift of the incremental sum.
        let best_utility = instance.utility(&best);
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_solution: best,
            best_utility,
            trajectory,
        })
    }
}

/// Draws one random feasibility-preserving move, or `None` if the sampled
/// move kind has no legal realization this round.
fn propose_move<R: Rng + ?Sized>(
    current: &Solution,
    instance: &Instance,
    rng: &mut R,
) -> Option<Move> {
    let n = instance.len();
    match rng.gen_range(0..3) {
        0 => {
            // Swap: preserves cardinality; must respect capacity.
            let out = current.random_selected(rng)?;
            let inc = current.random_unselected(rng)?;
            let new_total = current.tx_total() - instance.shards()[out].tx_count()
                + instance.shards()[inc].tx_count();
            (new_total <= instance.capacity()).then_some(Move::Swap(out, inc))
        }
        1 => {
            // Insert: must respect capacity.
            let inc = current.random_unselected(rng)?;
            (current.tx_total() + instance.shards()[inc].tx_count() <= instance.capacity())
                .then_some(Move::Insert(inc))
        }
        _ => {
            // Remove: must respect N_min.
            if current.selected_count() <= instance.n_min() || current.selected_count() <= 1 {
                return None;
            }
            let out = current.random_selected(rng)?;
            let _ = n;
            Some(Move::Remove(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::test_support::{instance, tiny};

    #[test]
    fn produces_feasible_solutions() {
        for seed in 0..4 {
            let inst = instance(30, seed);
            let outcome = SaSolver::new(SaConfig::paper(seed)).solve(&inst).unwrap();
            check_outcome(&inst, &outcome).unwrap();
        }
    }

    #[test]
    fn trajectory_is_monotone_best_so_far() {
        let inst = instance(25, 1);
        let outcome = SaSolver::new(SaConfig::paper(2)).solve(&inst).unwrap();
        assert_eq!(
            outcome.trajectory.len() as u64,
            SaConfig::paper(2).iterations + 1
        );
        for w in outcome.trajectory.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn approaches_the_exhaustive_optimum_on_tiny_instances() {
        let inst = tiny();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        let sa = SaSolver::new(SaConfig {
            iterations: 5_000,
            ..SaConfig::paper(3)
        })
        .solve(&inst)
        .unwrap();
        assert!(sa.best_utility <= exact.best_utility + 1e-9);
        assert!(
            sa.best_utility >= 0.95 * exact.best_utility,
            "SA {} far below optimum {}",
            sa.best_utility,
            exact.best_utility
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = instance(20, 2);
        let a = SaSolver::new(SaConfig::paper(7)).solve(&inst).unwrap();
        let b = SaSolver::new(SaConfig::paper(7)).solve(&inst).unwrap();
        assert_eq!(a.best_solution, b.best_solution);
        assert_eq!(a.trajectory, b.trajectory);
    }

    #[test]
    fn config_validation() {
        assert!(SaConfig {
            t0: 0.0,
            ..SaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            cooling: 1.0,
            ..SaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            cooling: 0.0,
            ..SaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            iterations: 0,
            ..SaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            t_min: 0.0,
            ..SaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            t_min: 1e9,
            ..SaConfig::paper(0)
        }
        .validate()
        .is_err());
        assert!(SaConfig::paper(0).validate().is_ok());
    }
}
