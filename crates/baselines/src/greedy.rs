//! Density-greedy reference solver.

use mvcom_core::{Instance, Solution};
use mvcom_types::{Error, Result};

use crate::{Solver, SolverOutcome};

/// Greedy selection by marginal-utility density.
///
/// Sorts shards by `(α·s_i − Π_i) / s_i` descending, admits every shard
/// with positive marginal utility that fits in the remaining capacity,
/// then — if fewer than `N_min` were admitted — tops up with the least-bad
/// remaining shards that fit.
///
/// This is the classical knapsack density heuristic; it gives a fast,
/// deterministic lower bar that the stochastic solvers should beat or match.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver {
    _private: (),
}

impl GreedySolver {
    /// Creates the solver.
    pub fn new() -> GreedySolver {
        GreedySolver { _private: () }
    }
}

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        let n = instance.len();
        let mut order: Vec<usize> = (0..n).collect();
        mvcom_types::sort_by_f64_desc(&mut order, |&i| {
            instance.marginal_utility(i) / instance.shards()[i].tx_count().max(1) as f64
        });

        let mut solution = Solution::empty(n);
        for &i in &order {
            if instance.marginal_utility(i) <= 0.0 {
                break; // order is by density; positives can still follow,
                       // so re-scan below for safety.
            }
            if solution.tx_total() + instance.shards()[i].tx_count() <= instance.capacity() {
                solution.insert(i, instance);
            }
        }
        // A positive-marginal shard can hide behind a negative-density one
        // only if densities and marginals disagree in sign, which they
        // cannot (s_i > 0) — but a second pass costs nothing and keeps the
        // invariant obvious.
        for &i in &order {
            if instance.marginal_utility(i) > 0.0
                && !solution.contains(i)
                && solution.tx_total() + instance.shards()[i].tx_count() <= instance.capacity()
            {
                solution.insert(i, instance);
            }
        }
        // Repair pass for N_min: admit the least-bad remaining shards.
        if solution.selected_count() < instance.n_min() {
            let mut rest: Vec<usize> = (0..n).filter(|&i| !solution.contains(i)).collect();
            mvcom_types::sort_by_f64_desc(&mut rest, |&i| instance.marginal_utility(i));
            for i in rest {
                if solution.selected_count() >= instance.n_min() {
                    break;
                }
                if solution.tx_total() + instance.shards()[i].tx_count() <= instance.capacity() {
                    solution.insert(i, instance);
                }
            }
        }
        // The additive repair can dead-end: large positive-density shards
        // may fill the capacity before N_min is reached, leaving no room
        // for the shards that would satisfy the floor. Rebuild
        // feasibility-first in that case: admit the N_min lightest shards
        // (the minimum-weight way to satisfy the cardinality floor), then
        // density-fill whatever capacity remains.
        if !instance.is_feasible(&solution) {
            let mut by_weight: Vec<usize> = (0..n).collect();
            by_weight.sort_by_key(|&i| instance.shards()[i].tx_count());
            solution = Solution::empty(n);
            for &i in by_weight.iter().take(instance.n_min()) {
                if solution.tx_total() + instance.shards()[i].tx_count() <= instance.capacity() {
                    solution.insert(i, instance);
                }
            }
            for &i in &order {
                if !solution.contains(i)
                    && instance.marginal_utility(i) > 0.0
                    && solution.tx_total() + instance.shards()[i].tx_count() <= instance.capacity()
                {
                    solution.insert(i, instance);
                }
            }
            if !instance.is_feasible(&solution) {
                return Err(Error::infeasible(
                    "greedy repair could not satisfy N_min within the capacity",
                ));
            }
        }
        let best_utility = instance.utility(&solution);
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_solution: solution,
            best_utility,
            trajectory: vec![(0, best_utility)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::test_support::{instance, tiny};
    use mvcom_core::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    #[test]
    fn produces_feasible_solutions() {
        for seed in 0..5 {
            let inst = instance(24, seed);
            let outcome = GreedySolver::new().solve(&inst).unwrap();
            check_outcome(&inst, &outcome).unwrap();
        }
    }

    #[test]
    fn never_beats_the_exhaustive_optimum() {
        let inst = tiny();
        let greedy = GreedySolver::new().solve(&inst).unwrap();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        assert!(greedy.best_utility <= exact.best_utility + 1e-9);
    }

    #[test]
    fn picks_obviously_dominant_shards() {
        // Two shards, both fit: one has hugely positive marginal, the
        // other hugely negative. Greedy must take exactly the first.
        let inst = InstanceBuilder::new()
            .alpha(1.0)
            .capacity(10_000)
            .n_min(0)
            .shards(vec![
                ShardInfo::new(
                    CommitteeId(0),
                    1_000,
                    TwoPhaseLatency::from_total(SimTime::from_secs(5_000.0)),
                ),
                ShardInfo::new(
                    CommitteeId(1),
                    10,
                    TwoPhaseLatency::from_total(SimTime::from_secs(0.0)),
                ),
            ])
            .build()
            .unwrap();
        let outcome = GreedySolver::new().solve(&inst).unwrap();
        assert_eq!(
            outcome.best_solution.iter_selected().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn n_min_repair_admits_negative_marginals_when_forced() {
        let inst = InstanceBuilder::new()
            .alpha(0.01)
            .capacity(1_000)
            .n_min(2)
            .shards(vec![
                ShardInfo::new(
                    CommitteeId(0),
                    100,
                    TwoPhaseLatency::from_total(SimTime::from_secs(1_000.0)),
                ),
                ShardInfo::new(
                    CommitteeId(1),
                    100,
                    TwoPhaseLatency::from_total(SimTime::from_secs(0.0)),
                ),
                ShardInfo::new(
                    CommitteeId(2),
                    100,
                    TwoPhaseLatency::from_total(SimTime::from_secs(500.0)),
                ),
            ])
            .build()
            .unwrap();
        let outcome = GreedySolver::new().solve(&inst).unwrap();
        assert!(outcome.best_solution.selected_count() >= 2);
        check_outcome(&inst, &outcome).unwrap();
    }
}
