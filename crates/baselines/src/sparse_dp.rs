//! Sparse dynamic-programming baseline for the 10⁴–10⁵ committee regime.
//!
//! The dense knapsack DP in [`crate::dp`] keeps a `|I| × (buckets+1)`
//! boolean take/skip table for reconstruction — one heap-allocated row
//! per committee. At `|I| = 100 000` that is ~51 MB of `Vec<bool>` plus
//! 100k allocations, and the value array is rescanned wholesale for every
//! item regardless of how few states are actually reachable.
//!
//! [`SparseDpSolver`] computes the *same relaxation* with two structural
//! changes:
//!
//! 1. **Dominant-state (Pareto-frontier) pruning.** Only states
//!    `(weight, value)` that are not dominated — no other state is both
//!    lighter-or-equal and at-least-as-valuable — are kept. The frontier
//!    is sorted strictly increasing in weight *and* value, so it never
//!    exceeds `buckets + 1` entries and is usually far smaller; merging
//!    an item is a linear two-pointer pass instead of a full-table scan.
//! 2. **Bit-packed reconstruction.** The take/skip table shrinks to one
//!    bit per `(item, weight)` cell in a single flat allocation
//!    (~6.4 MB at `|I| = 100k`, `buckets = 512`).
//!
//! Capacity bucketing is identical to the dense solver (weights rounded
//! **up** at granularity `⌈Ĉ/max_buckets⌉`, so DP-feasible ⇒ feasible),
//! and the `N_min` repair pass is literally shared code
//! (`crate::dp::repair_n_min`). The two solvers therefore find the same
//! optimal *value* on every instance; they may reconstruct different
//! equal-value selections when ties exist, which is why the differential
//! tests compare utilities and feasibility rather than bitsets.

use serde::{Deserialize, Serialize};

use mvcom_core::{DdlPolicy, Instance, Solution};
use mvcom_types::{Error, Result};

use crate::dp::{repair_n_min, DpConfig};
use crate::{Solver, SolverOutcome};

/// One dominant DP state: `weight` is the exact bucketed weight of its
/// item set, `value` the summed marginal utility. Public so property
/// tests can assert the pruning invariant on [`pareto_frontier`] output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpState {
    /// Exact total bucketed weight of the state's item set.
    pub weight: u32,
    /// Total value (summed marginal utilities) of the item set.
    pub value: f64,
}

/// Bit-packed take/skip matrix: one bit per `(item, weight)` cell.
struct KeepBits {
    words: Vec<u64>,
    /// Words per item row (`⌈(buckets+1)/64⌉`).
    stride: usize,
}

impl KeepBits {
    fn new(items: usize, buckets: u32) -> KeepBits {
        let stride = (buckets as usize + 1).div_ceil(64);
        KeepBits {
            words: vec![0u64; items * stride],
            stride,
        }
    }

    fn set(&mut self, item: usize, weight: u32) {
        let w = weight as usize;
        self.words[item * self.stride + w / 64] |= 1u64 << (w % 64);
    }

    fn get(&self, item: usize, weight: u32) -> bool {
        let w = weight as usize;
        self.words[item * self.stride + w / 64] >> (w % 64) & 1 == 1
    }
}

/// Runs the dominant-state knapsack DP and returns the final Pareto
/// frontier, sorted strictly increasing in both weight and value. The
/// last state carries the optimal value of the (bucketed, `N_min`-free)
/// relaxation — identical to the dense table's `dp[buckets]`.
///
/// Items with non-positive value or bucketed weight above `buckets` are
/// skipped, exactly as in the dense solver. Exposed for the
/// pruning-invariant property tests; [`SparseDpSolver`] is the
/// production entry point.
pub fn pareto_frontier(weights: &[u32], values: &[f64], buckets: u32) -> Vec<DpState> {
    run_frontier(weights, values, buckets).0
}

/// The frontier plus the reconstruction bits.
fn run_frontier(weights: &[u32], values: &[f64], buckets: u32) -> (Vec<DpState>, KeepBits) {
    assert_eq!(weights.len(), values.len());
    let mut keep = KeepBits::new(weights.len(), buckets);
    let mut frontier = vec![DpState {
        weight: 0,
        value: 0.0,
    }];
    let mut merged: Vec<DpState> = Vec::new();
    let mut candidates: Vec<DpState> = Vec::new();
    for (i, (&w_i, &v_i)) in weights.iter().zip(values).enumerate() {
        if v_i <= 0.0 || w_i > buckets {
            continue; // negative-value items never help the relaxation
        }
        // Extending every frontier state by item i preserves the sort:
        // weights shift by w_i, values by v_i.
        candidates.clear();
        candidates.extend(
            frontier
                .iter()
                .take_while(|s| s.weight + w_i <= buckets)
                .map(|s| DpState {
                    weight: s.weight + w_i,
                    value: s.value + v_i,
                }),
        );
        // Two-pointer merge keeping only dominant states. `best` is the
        // running max value over all lighter-or-equal states — the exact
        // analogue of the dense `candidate > dp[w]` test (strict, so on
        // value ties the skip state wins, matching the dense solver).
        merged.clear();
        let (mut a, mut b) = (0usize, 0usize);
        let mut best = f64::NEG_INFINITY;
        while a < frontier.len() || b < candidates.len() {
            let take_skip = b >= candidates.len()
                || (a < frontier.len() && frontier[a].weight <= candidates[b].weight);
            let (state, from_item) = if take_skip {
                a += 1;
                (frontier[a - 1], false)
            } else {
                b += 1;
                (candidates[b - 1], true)
            };
            if state.value > best {
                best = state.value;
                match merged.last_mut() {
                    // A same-weight survivor is dominated by this strictly
                    // better state: replace, don't duplicate the weight.
                    Some(last) if last.weight == state.weight => *last = state,
                    _ => merged.push(state),
                }
                if from_item {
                    keep.set(i, state.weight);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut merged);
    }
    (frontier, keep)
}

/// The sparse knapsack-DP solver.
///
/// Same contract and limitations as [`crate::dp::DpSolver`] (MaxArrival
/// only, `N_min` by repair, bucketing-inexact), but with
/// `O(frontier)` ≤ `O(buckets)` state per item and a bit-packed
/// reconstruction table — the memory drops from `O(|I|·Ĉ̂)` bytes to
/// `O(|I|·Ĉ̂/64)` words, which is what makes `|I| = 10⁵` tractable.
#[derive(Debug, Clone, Copy, Default)]
pub struct SparseDpSolver {
    config: DpConfig,
}

impl SparseDpSolver {
    /// Creates a solver with the given bucket budget.
    pub fn new(config: DpConfig) -> SparseDpSolver {
        SparseDpSolver { config }
    }
}

impl Solver for SparseDpSolver {
    fn name(&self) -> &'static str {
        "sparse-dp"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        self.config.validate()?;
        if instance.ddl_policy() != DdlPolicy::MaxArrival {
            return Err(Error::invalid_instance(
                "the DP baseline requires the separable MaxArrival objective",
            ));
        }
        let n = instance.len();
        let capacity = instance.capacity();
        let granularity = capacity.div_ceil(self.config.max_buckets as u64).max(1);
        let buckets = (capacity / granularity) as u32;

        let weights: Vec<u32> = (0..n)
            .map(|i| {
                // Oversized shards can't be taken anyway; saturate instead
                // of overflowing u32 on pathological tx counts.
                u32::try_from(instance.shards()[i].tx_count().div_ceil(granularity))
                    .unwrap_or(u32::MAX)
            })
            .collect();
        let values: Vec<f64> = (0..n).map(|i| instance.marginal_utility(i)).collect();

        let (frontier, keep) = run_frontier(&weights, &values, buckets);

        // Reconstruct from the best (last, by the strict value ordering)
        // state: every take lands exactly on its parent state's weight.
        let mut solution = Solution::empty(n);
        // lint: allow(P1, run_frontier always seeds the zero state)
        let best = frontier.last().expect("frontier holds the zero state");
        let mut w = best.weight;
        for i in (0..n).rev() {
            if keep.get(i, w) {
                solution.insert(i, instance);
                w -= weights[i];
            }
        }
        debug_assert_eq!(w, 0, "reconstruction must unwind to the empty state");

        let solution = repair_n_min(instance, solution, &values)?;
        let best_utility = instance.utility(&solution);
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_solution: solution,
            best_utility,
            trajectory: vec![(0, best_utility)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::dp::DpSolver;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::test_support::{instance, tiny};
    use mvcom_core::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    #[test]
    fn produces_feasible_solutions_matching_dense_value() {
        for seed in 0..6 {
            let inst = instance(60, seed);
            let sparse = SparseDpSolver::default().solve(&inst).unwrap();
            check_outcome(&inst, &sparse).unwrap();
            let dense = DpSolver::default().solve(&inst).unwrap();
            assert!(
                (sparse.best_utility - dense.best_utility).abs()
                    < 1e-9 * (1.0 + dense.best_utility.abs()),
                "seed {seed}: sparse {} vs dense {}",
                sparse.best_utility,
                dense.best_utility
            );
        }
    }

    #[test]
    fn exact_when_capacity_fits_in_buckets() {
        let inst = InstanceBuilder::new()
            .alpha(2.0)
            .capacity(500)
            .n_min(0)
            .shards(
                (0..12)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i),
                            40 + u64::from(i) * 13,
                            TwoPhaseLatency::from_total(SimTime::from_secs(
                                100.0 + 37.0 * f64::from(i % 5),
                            )),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap();
        let sparse = SparseDpSolver::new(DpConfig { max_buckets: 500 })
            .solve(&inst)
            .unwrap();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        assert!(
            (sparse.best_utility - exact.best_utility).abs() < 1e-6,
            "sparse {} vs exact {}",
            sparse.best_utility,
            exact.best_utility
        );
    }

    #[test]
    fn rejects_max_selected_policy() {
        let inst = InstanceBuilder::new()
            .capacity(1_000)
            .ddl_policy(DdlPolicy::MaxSelected)
            .shards(vec![ShardInfo::new(
                CommitteeId(0),
                10,
                TwoPhaseLatency::from_total(SimTime::from_secs(1.0)),
            )])
            .build()
            .unwrap();
        let err = SparseDpSolver::default().solve(&inst).unwrap_err();
        assert!(err.to_string().contains("MaxArrival"), "{err}");
    }

    #[test]
    fn frontier_is_strictly_increasing_in_weight_and_value() {
        let weights = [3u32, 5, 2, 7, 4, 1, 6, 2];
        let values = [9.0, 14.0, 5.0, 20.0, 11.0, 2.5, 16.0, 5.5];
        let frontier = pareto_frontier(&weights, &values, 20);
        assert_eq!(frontier[0].weight, 0);
        assert_eq!(frontier[0].value, 0.0);
        for pair in frontier.windows(2) {
            assert!(pair[0].weight < pair[1].weight, "{frontier:?}");
            assert!(pair[0].value < pair[1].value, "{frontier:?}");
        }
        // Optimal value equals all items (they all fit: Σw = 30 > 20, so
        // pruning actually had to choose).
        let best = frontier.last().unwrap();
        assert!(best.weight <= 20);
    }

    #[test]
    fn n_min_repair_kicks_in() {
        let inst = InstanceBuilder::new()
            .alpha(0.001)
            .capacity(1_000)
            .n_min(2)
            .shards(
                (0..5)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i),
                            100,
                            TwoPhaseLatency::from_total(SimTime::from_secs(f64::from(i) * 100.0)),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap();
        let outcome = SparseDpSolver::default().solve(&inst).unwrap();
        assert_eq!(outcome.best_solution.selected_count(), 2);
        check_outcome(&inst, &outcome).unwrap();
    }

    #[test]
    fn handles_zero_weight_and_oversized_items() {
        // Weight-0 items (tiny shards under coarse granularity) must be
        // taken for free; oversized ones skipped without overflow.
        let weights = [0u32, 4, u32::MAX, 2];
        let values = [3.0, 8.0, 100.0, 5.0];
        let frontier = pareto_frontier(&weights, &values, 5);
        let best = frontier.last().unwrap();
        // 0-weight (3.0) + weight-2 (5.0) + ... weight-4 doesn't fit with
        // weight-2 (6 > 5), so best is 3 + 8 = 11 at weight 4.
        assert!((best.value - 11.0).abs() < 1e-12, "{frontier:?}");
        let tiny_inst = tiny();
        let outcome = SparseDpSolver::default().solve(&tiny_inst).unwrap();
        check_outcome(&tiny_inst, &outcome).unwrap();
    }
}
