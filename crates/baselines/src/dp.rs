//! Dynamic Programming baseline (paper §VI-B, refs. \[23\], \[24\]).
//!
//! Under the paper's MaxArrival deadline, MVCom without the `N_min`
//! constraint *is* a 0/1 knapsack: item value `α·s_i − Π_i`, item weight
//! `s_i`, capacity `Ĉ`. The classical DP is exact but needs a
//! `O(|I|·Ĉ)` table; at the paper's scales (`Ĉ` up to 10⁶) that is only
//! tractable with **capacity bucketing** — weights are rounded *up* to a
//! granularity `g = ⌈Ĉ / max_buckets⌉`, which preserves feasibility but
//! sacrifices optimality. Together with the bolted-on `N_min` repair pass
//! this reproduces the qualitative behaviour the paper reports for DP:
//! decent utility, but systematically below SE, and a poor Valuable Degree
//! (DP maximizes value with no regard for how the age is distributed).

use serde::{Deserialize, Serialize};

use mvcom_core::{DdlPolicy, Instance, Solution};
use mvcom_types::{Error, Result};

use crate::{Solver, SolverOutcome};

/// Dynamic-programming parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Maximum number of capacity buckets (table columns). The effective
    /// weight granularity is `⌈Ĉ / max_buckets⌉`.
    pub max_buckets: usize,
}

impl DpConfig {
    /// The default table width. 512 buckets keeps the `|I|·buckets` table
    /// small enough to run at the paper's largest scale (`|I| = 1000`,
    /// `Ĉ = 10⁶`), at the price of quantizing the capacity to ~2000-TX
    /// steps — roughly two shards. This quantization (plus the bolted-on
    /// `N_min` repair) is what leaves DP visibly below SE in the
    /// comparison figures, matching the paper's observation.
    pub fn paper() -> DpConfig {
        DpConfig { max_buckets: 512 }
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if `max_buckets` is zero.
    pub fn validate(&self) -> Result<()> {
        if self.max_buckets == 0 {
            return Err(Error::invalid_config("max_buckets", "must be positive"));
        }
        Ok(())
    }
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig::paper()
    }
}

/// The knapsack-DP solver.
///
/// # Limitations (by design, mirroring the baseline's role in the paper)
///
/// * Requires the separable [`DdlPolicy::MaxArrival`] objective; returns
///   [`Error::InvalidInstance`] under `MaxSelected`.
/// * Ignores `N_min` during optimization; a repair pass adds the least-bad
///   shards afterwards if needed.
/// * Weight bucketing makes it inexact unless `Ĉ ≤ max_buckets`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DpSolver {
    config: DpConfig,
}

impl DpSolver {
    /// Creates a solver with the given table width.
    pub fn new(config: DpConfig) -> DpSolver {
        DpSolver { config }
    }
}

impl Solver for DpSolver {
    fn name(&self) -> &'static str {
        "dp"
    }

    fn solve(&self, instance: &Instance) -> Result<SolverOutcome> {
        self.config.validate()?;
        if instance.ddl_policy() != DdlPolicy::MaxArrival {
            return Err(Error::invalid_instance(
                "the DP baseline requires the separable MaxArrival objective",
            ));
        }
        let n = instance.len();
        let capacity = instance.capacity();
        let granularity = capacity.div_ceil(self.config.max_buckets as u64).max(1);
        let buckets = (capacity / granularity) as usize;

        // Bucketed weights, rounded UP so any DP-feasible selection is also
        // truly feasible.
        let weights: Vec<usize> = (0..n)
            .map(|i| instance.shards()[i].tx_count().div_ceil(granularity) as usize)
            .collect();
        let values: Vec<f64> = (0..n).map(|i| instance.marginal_utility(i)).collect();

        // dp[w] = best value using weight exactly <= w; keep[i][w] records
        // the take/skip decision for reconstruction.
        let mut dp = vec![0.0f64; buckets + 1];
        let mut keep = vec![vec![false; buckets + 1]; n];
        for i in 0..n {
            if values[i] <= 0.0 || weights[i] > buckets {
                continue; // negative-value items never help the relaxation
            }
            // Iterate weights downward: classic 0/1 knapsack in-place.
            for w in (weights[i]..=buckets).rev() {
                let candidate = dp[w - weights[i]] + values[i];
                if candidate > dp[w] {
                    dp[w] = candidate;
                    keep[i][w] = true;
                }
            }
        }

        // Reconstruct.
        let mut solution = Solution::empty(n);
        let mut w = buckets;
        for i in (0..n).rev() {
            if keep[i][w] {
                solution.insert(i, instance);
                w -= weights[i];
            }
        }

        let solution = repair_n_min(instance, solution, &values)?;
        let best_utility = instance.utility(&solution);
        Ok(SolverOutcome {
            solver: self.name().to_string(),
            best_solution: solution,
            best_utility,
            trajectory: vec![(0, best_utility)],
        })
    }
}

/// `N_min` repair shared by the dense and sparse DP solvers — behavior
/// (and therefore figure output) must stay identical between the two, so
/// there is exactly one copy of it.
///
/// The knapsack relaxation may under-select: top up with the highest-value
/// remaining shards that still fit. The value-ordered repair can wedge
/// (big high-value picks may fill the capacity before the count reaches
/// `N_min`); fall back to the guaranteed-feasible base — the `N_min`
/// smallest shards — topped up greedily.
///
/// # Errors
///
/// [`Error::Infeasible`] when not even the fallback satisfies `N_min`
/// within the capacity.
pub(crate) fn repair_n_min(
    instance: &Instance,
    mut solution: Solution,
    values: &[f64],
) -> Result<Solution> {
    let n = instance.len();
    let capacity = instance.capacity();
    if solution.selected_count() < instance.n_min() {
        let mut rest: Vec<usize> = (0..n).filter(|&i| !solution.contains(i)).collect();
        mvcom_types::sort_by_f64_desc(&mut rest, |&i| values[i]);
        for i in rest {
            if solution.selected_count() >= instance.n_min() {
                break;
            }
            if solution.tx_total() + instance.shards()[i].tx_count() <= capacity {
                solution.insert(i, instance);
            }
        }
    }
    if !instance.is_feasible(&solution) {
        let mut by_size: Vec<usize> = (0..n).collect();
        by_size.sort_by_key(|&i| instance.shards()[i].tx_count());
        let mut fallback = Solution::empty(n);
        for &i in by_size.iter().take(instance.n_min()) {
            fallback.insert(i, instance);
        }
        let mut rest: Vec<usize> = (0..n).filter(|&i| !fallback.contains(i)).collect();
        mvcom_types::sort_by_f64_desc(&mut rest, |&i| values[i]);
        for i in rest {
            if values[i] <= 0.0 {
                break;
            }
            if fallback.tx_total() + instance.shards()[i].tx_count() <= capacity {
                fallback.insert(i, instance);
            }
        }
        if !instance.is_feasible(&fallback) {
            return Err(Error::infeasible(
                "DP repair could not satisfy N_min within the capacity",
            ));
        }
        solution = fallback;
    }
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_outcome;
    use crate::exhaustive::ExhaustiveSolver;
    use crate::test_support::{instance, tiny};
    use mvcom_core::problem::InstanceBuilder;
    use mvcom_types::{CommitteeId, ShardInfo, SimTime, TwoPhaseLatency};

    #[test]
    fn produces_feasible_solutions() {
        for seed in 0..4 {
            let inst = instance(30, seed);
            let outcome = DpSolver::default().solve(&inst).unwrap();
            check_outcome(&inst, &outcome).unwrap();
        }
    }

    #[test]
    fn exact_when_capacity_fits_in_buckets() {
        // With granularity 1 and n_min 0, DP must equal the exhaustive
        // optimum exactly.
        let inst = InstanceBuilder::new()
            .alpha(2.0)
            .capacity(500)
            .n_min(0)
            .shards(
                (0..12)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i),
                            40 + u64::from(i) * 13,
                            TwoPhaseLatency::from_total(SimTime::from_secs(
                                100.0 + 37.0 * f64::from(i % 5),
                            )),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap();
        let dp = DpSolver::new(DpConfig { max_buckets: 500 })
            .solve(&inst)
            .unwrap();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        assert!(
            (dp.best_utility - exact.best_utility).abs() < 1e-6,
            "dp {} vs exact {}",
            dp.best_utility,
            exact.best_utility
        );
    }

    #[test]
    fn bucketing_never_exceeds_the_optimum() {
        let inst = tiny();
        let exact = ExhaustiveSolver::new().solve(&inst).unwrap();
        for max_buckets in [8usize, 64, 1024] {
            let dp = DpSolver::new(DpConfig { max_buckets })
                .solve(&inst)
                .unwrap();
            check_outcome(&inst, &dp).unwrap();
            assert!(
                dp.best_utility <= exact.best_utility + 1e-9,
                "buckets={max_buckets}"
            );
        }
    }

    #[test]
    fn coarser_buckets_lose_utility() {
        // Quantization loss is (weakly) monotone in granularity on average;
        // verify the coarse table does not beat the fine one.
        let inst = instance(40, 5);
        let fine = DpSolver::new(DpConfig { max_buckets: 4096 })
            .solve(&inst)
            .unwrap();
        let coarse = DpSolver::new(DpConfig { max_buckets: 16 })
            .solve(&inst)
            .unwrap();
        assert!(coarse.best_utility <= fine.best_utility + 1e-9);
    }

    #[test]
    fn rejects_max_selected_policy() {
        let inst = InstanceBuilder::new()
            .capacity(1_000)
            .ddl_policy(mvcom_core::DdlPolicy::MaxSelected)
            .shards(vec![ShardInfo::new(
                CommitteeId(0),
                10,
                TwoPhaseLatency::from_total(SimTime::from_secs(1.0)),
            )])
            .build()
            .unwrap();
        assert!(DpSolver::default().solve(&inst).is_err());
    }

    #[test]
    fn n_min_repair_kicks_in() {
        // All marginals negative: the relaxation selects nothing; repair
        // must still deliver N_min shards.
        let inst = InstanceBuilder::new()
            .alpha(0.001)
            .capacity(1_000)
            .n_min(2)
            .shards(
                (0..5)
                    .map(|i| {
                        ShardInfo::new(
                            CommitteeId(i),
                            100,
                            TwoPhaseLatency::from_total(SimTime::from_secs(f64::from(i) * 100.0)),
                        )
                    })
                    .collect(),
            )
            .build()
            .unwrap();
        let outcome = DpSolver::default().solve(&inst).unwrap();
        assert_eq!(outcome.best_solution.selected_count(), 2);
        check_outcome(&inst, &outcome).unwrap();
    }

    #[test]
    fn config_validation() {
        assert!(DpConfig { max_buckets: 0 }.validate().is_err());
        assert!(DpConfig::paper().validate().is_ok());
    }
}
