//! The metrics snapshot endpoint: plain HTTP/1.0 over
//! `std::net::TcpListener`, zero dependencies.
//!
//! The server thread is deliberately dumb: it never touches the daemon,
//! the metrics registry, or the telemetry handle (the workspace C1 lint
//! bans `Obs` emission from spawned closures precisely because it would
//! race the event sequence). Instead, the daemon loop renders a JSON
//! snapshot after every epoch into a [`SnapshotCell`] — an
//! `Arc<Mutex<String>>` — and the server thread serves whatever string
//! is current. The hot path stays single-threaded and deterministic; the
//! endpoint is read-only by construction.
//!
//! Routes:
//!
//! * `GET /metrics` — the current snapshot (`application/json`).
//! * `GET /healthz` — `ok` once the daemon has rendered its first
//!   snapshot (it does so before opening the listener).
//! * anything else — `404`.
//!
//! Responses are `HTTP/1.0` with `Content-Length` and
//! `Connection: close`; any HTTP client (curl, a scraper) can poll it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on the request bytes read before answering (headers only).
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// The shared snapshot string: the daemon writes, the server reads.
#[derive(Debug, Clone, Default)]
pub struct SnapshotCell {
    inner: Arc<Mutex<String>>,
}

impl SnapshotCell {
    /// An empty cell.
    pub fn new() -> SnapshotCell {
        SnapshotCell::default()
    }

    /// Replaces the snapshot.
    pub fn set(&self, snapshot: String) {
        *self.inner.lock().unwrap_or_else(|p| p.into_inner()) = snapshot;
    }

    /// The current snapshot (empty string before the first render).
    pub fn get(&self) -> String {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// A running metrics endpoint; shuts down when dropped.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn start(addr: &str, cell: SnapshotCell) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => serve_one(stream, &cell),
                    Err(_) => break,
                }
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks; a self-connection wakes it so it can
        // observe the stop flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Handles one connection: read the request head, route, respond, close.
fn serve_one(mut stream: TcpStream, cell: &SnapshotCell) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut request = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&chunk[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n")
                    || request.len() >= MAX_REQUEST_BYTES
                {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&request);
    let path = head
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(path)) => Some(path.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => ("200 OK", "application/json", cell.get()),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "" => ("400 Bad Request", "text/plain", "bad request\n".to_string()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        let mut line = String::new();
        // Skip the remaining headers.
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
        }
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), body)
    }

    #[test]
    fn serves_snapshot_health_and_404() {
        let cell = SnapshotCell::new();
        cell.set("{\"counters\":{}}".to_string());
        let server = MetricsServer::start("127.0.0.1:0", cell.clone()).unwrap();
        let addr = server.addr();
        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"counters\":{}}");
        // The endpoint serves the *current* snapshot, not a copy at bind.
        cell.set("{\"counters\":{\"daemon.epochs\":1}}".to_string());
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("daemon.epochs"), "{body}");
        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
        drop(server); // joins the accept thread
    }
}
