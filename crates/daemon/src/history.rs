//! The append-only epoch-history log: length-prefixed, CRC-framed JSONL.
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: `len` bytes]
//! ```
//!
//! where `payload` is one line of deterministic JSON (the serde encoding
//! of a [`HistoryRecord`], newline-terminated) and `crc` is the CRC-32
//! (IEEE 802.3) of the payload bytes. The JSON stays `grep`/`jq`-able by
//! skipping 8 bytes per record; the frame makes torn tails detectable.
//!
//! Crash semantics (the whole point of the format): a `kill -9` can only
//! ever leave a *prefix* of an in-flight append on disk — the OS never
//! reorders bytes within a single `write`. [`read_history`] therefore
//! treats an incomplete final frame as a torn append and drops it
//! ([`LoadedHistory::dropped_bytes`]), while a CRC or structural mismatch
//! on a *complete* frame can only mean real corruption and is a hard
//! error. The daemon re-derives the dropped epoch deterministically from
//! the last intact checkpoint, so recovery reproduces the exact bytes an
//! uninterrupted run would have written.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use mvcom_core::defense::DefenseCheckpoint;
use mvcom_core::se::SeCheckpoint;

use crate::alerts::AlertRecord;
use crate::epoch_clock::EpochClock;
use crate::error::{DaemonError, Result};

/// Version stamp carried by the [`RunHeader`]; bump on any incompatible
/// change to the framing or a record's JSON shape.
pub const HISTORY_VERSION: u32 = 1;

/// Upper bound on a single record's payload length. A complete frame
/// header announcing more than this is treated as corruption, not as a
/// record to allocate for.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// The wire tags of every history-record kind, in file order. The
/// OPERATIONS.md doc-sync test asserts each one is documented.
pub const RECORD_KINDS: &[&str] = &["Header", "Epoch"];

// ---- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) -------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes` — the checksum used by the frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- records ------------------------------------------------------------

/// First record of every history file: the determinism-relevant slice of
/// the daemon configuration. Runtime knobs that do not influence the
/// produced bytes (`--epochs`, `--throttle-ms`, `--http`, obs settings)
/// are deliberately absent, so histories from differently-paced runs of
/// the same logical configuration compare byte-equal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHeader {
    /// [`HISTORY_VERSION`] at write time.
    pub version: u32,
    /// Master seed of the seeded source, the SE engine, and the adversary.
    pub seed: u64,
    /// Committee population of the seeded source (0 for stdin sources).
    pub population: u32,
    /// Reports requested per ingest batch.
    pub batch_size: u32,
    /// Reports that fill (and close) one epoch.
    pub reports_per_epoch: u32,
    /// Logical seconds one ingest batch advances the clock by.
    pub batch_interval_s: f64,
    /// Throughput weight `α` of the per-epoch instance.
    pub alpha: f64,
    /// Final-block capacity per arrived committee (`Ĉ = c·|I|`).
    pub capacity_per_committee: u64,
    /// `N_min` as a fraction of the screened shard count.
    pub n_min_fraction: f64,
    /// Whether the defense layer screens reports.
    pub defense: bool,
    /// Fraction of committees the adversary controls (0 = honest run).
    pub adv_fraction: f64,
    /// Adversary strategy name ("" = honest run).
    pub adv_strategy: String,
    /// SE iteration budget override (0 = `SeConfig::paper` default).
    pub se_iterations: u64,
}

/// Everything the daemon needs to resume after the epoch this checkpoint
/// is embedded in: the source cursor, the logical clock, the defense
/// state, lifetime totals, and the final SE solver state of the epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonCheckpoint {
    /// Reports consumed from the source up to and including this epoch.
    pub cursor: u64,
    /// The logical clock *after* closing this epoch.
    pub clock: EpochClock,
    /// Defense state after `end_epoch`, when `--defense on`.
    pub defense: Option<DefenseCheckpoint>,
    /// Epochs closed so far (including this one).
    pub total_epochs: u64,
    /// Reports ingested so far.
    pub total_reports: u64,
    /// Truth transactions admitted so far.
    pub total_admitted_txs: u64,
    /// The SE engine's state at the end of this epoch's solve (absent for
    /// degenerate epochs solved without SE). Recovery does not need it —
    /// epochs re-solve deterministically — but it lets an operator rebuild
    /// the solver via `SeEngine::from_checkpoint` for inspection.
    pub se: Option<SeCheckpoint>,
}

/// The per-epoch scheduling outcome, as written to history and rendered
/// by `epoch_close` telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSummary {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Logical clock when the epoch opened, s.
    pub t_open: f64,
    /// Logical clock when the epoch closed, s.
    pub t_close: f64,
    /// Reports ingested into the epoch.
    pub reports: u64,
    /// Truth transactions offered by those reports.
    pub offered_txs: u64,
    /// Reports the defense screened out before scheduling.
    pub quarantined: u64,
    /// Reports carrying adversarial (perturbed) claims.
    pub adversarial: u64,
    /// Committees the SE schedule admitted.
    pub admitted: u64,
    /// Truth transactions of the admitted committees.
    pub admitted_txs: u64,
    /// Objective value `U(f)` of the schedule over reported features.
    pub utility: f64,
    /// Epoch deadline `t_j` of the scheduled instance, s.
    pub ddl_s: f64,
    /// Final-block capacity `Ĉ` of the scheduled instance.
    pub capacity: u64,
    /// `N_min` of the scheduled instance.
    pub n_min: u64,
    /// CRC-32 over the admitted committee ids (sorted, u32 LE) — a compact
    /// fingerprint for diffing schedules across runs.
    pub schedule_crc: u32,
}

/// One closed epoch: the outcome, the alerts it fired, and the embedded
/// recovery checkpoint. A single record per epoch means an append is the
/// epoch's atom — there is no cross-record state to tear.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// The scheduling outcome.
    pub summary: EpochSummary,
    /// Alerts fired by this epoch (empty when all thresholds held).
    pub alerts: Vec<AlertRecord>,
    /// Resume-from-here state.
    pub checkpoint: DaemonCheckpoint,
}

/// One record of the history log. Serialized with the externally-tagged
/// enum encoding, so the payload reads `{"Header":{…}}` / `{"Epoch":{…}}`
/// — the tag is the record kind (see [`RECORD_KINDS`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HistoryRecord {
    /// Run configuration; always the first record.
    Header(RunHeader),
    /// One closed epoch; every subsequent record. Boxed: an epoch record
    /// embeds a full [`DaemonCheckpoint`], far larger than a header.
    Epoch(Box<EpochRecord>),
}

impl HistoryRecord {
    /// The record's wire tag.
    pub fn kind(&self) -> &'static str {
        match self {
            HistoryRecord::Header(_) => "Header",
            HistoryRecord::Epoch(_) => "Epoch",
        }
    }
}

/// Encodes one record as its complete frame (header + JSON payload).
///
/// # Errors
///
/// [`DaemonError::History`] if the record fails to serialize (cannot
/// happen for records the daemon builds; kept as an error rather than a
/// panic because the payload crosses a process boundary).
pub fn encode_record(record: &HistoryRecord) -> Result<Vec<u8>> {
    let mut payload = serde_json::to_string(record)
        .map_err(|e| DaemonError::history(format!("serialize record: {e:?}")))?;
    payload.push('\n');
    let bytes = payload.into_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&l| l <= MAX_RECORD_LEN)
        .ok_or_else(|| DaemonError::history("record exceeds MAX_RECORD_LEN"))?;
    let mut frame = Vec::with_capacity(8 + bytes.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc32(&bytes).to_le_bytes());
    frame.extend_from_slice(&bytes);
    Ok(frame)
}

// ---- writer -------------------------------------------------------------

/// Appends framed records to a history file, one `write` per record.
#[derive(Debug)]
pub struct HistoryWriter {
    file: File,
    bytes: u64,
}

impl HistoryWriter {
    /// Creates (truncating) a fresh history file.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error as [`DaemonError::Io`].
    pub fn create(path: &Path) -> Result<HistoryWriter> {
        let file = File::create(path).map_err(DaemonError::io)?;
        Ok(HistoryWriter { file, bytes: 0 })
    }

    /// Opens an existing history for appending, first truncating it to
    /// `valid_bytes` (dropping any torn tail found by [`read_history`]).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error as [`DaemonError::Io`].
    pub fn append_existing(path: &Path, valid_bytes: u64) -> Result<HistoryWriter> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(DaemonError::io)?;
        file.set_len(valid_bytes).map_err(DaemonError::io)?;
        let mut file = file;
        file.seek(SeekFrom::End(0)).map_err(DaemonError::io)?;
        Ok(HistoryWriter {
            file,
            bytes: valid_bytes,
        })
    }

    /// Appends one record as a single `write` and flushes; returns the
    /// frame size in bytes.
    ///
    /// # Errors
    ///
    /// Serialization failures ([`DaemonError::History`]) and I/O errors.
    pub fn append(&mut self, record: &HistoryRecord) -> Result<u64> {
        let frame = encode_record(record)?;
        self.file.write_all(&frame).map_err(DaemonError::io)?;
        self.file.flush().map_err(DaemonError::io)?;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Bytes written to the file so far (equals the file length).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

// ---- reader -------------------------------------------------------------

/// The result of replaying a history file.
#[derive(Debug)]
pub struct LoadedHistory {
    /// Every intact record, in file order.
    pub records: Vec<HistoryRecord>,
    /// Length of the intact prefix — pass to
    /// [`HistoryWriter::append_existing`] to resume.
    pub valid_bytes: u64,
    /// Bytes of a torn final append that were dropped (0 for a clean
    /// shutdown).
    pub dropped_bytes: u64,
}

/// Reads and verifies a history file.
///
/// An incomplete final frame (fewer bytes than its header announces, or a
/// partial header) is a torn `kill -9` append: it is dropped and reported
/// via [`LoadedHistory::dropped_bytes`]. Anything else that fails to
/// verify — CRC mismatch, implausible length, payload not newline-
/// terminated, unparseable JSON — is corruption and returns an error:
/// a torn write cannot produce those states, so the file must not be
/// trusted for resumption.
///
/// # Errors
///
/// [`DaemonError::Io`] on read failures; [`DaemonError::History`] on
/// corruption.
pub fn read_history(path: &Path) -> Result<LoadedHistory> {
    let mut bytes = Vec::new();
    File::open(path)
        .map_err(DaemonError::io)?
        .read_to_end(&mut bytes)
        .map_err(DaemonError::io)?;
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = bytes.len() - offset;
        if rest == 0 {
            return Ok(LoadedHistory {
                records,
                valid_bytes: offset as u64,
                dropped_bytes: 0,
            });
        }
        if rest < 8 {
            // Torn mid-header: drop the partial frame.
            return Ok(LoadedHistory {
                records,
                valid_bytes: offset as u64,
                dropped_bytes: rest as u64,
            });
        }
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]);
        let crc = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        if len == 0 || len > MAX_RECORD_LEN {
            return Err(DaemonError::history(format!(
                "record at byte {offset} announces implausible length {len}"
            )));
        }
        if rest - 8 < len as usize {
            // Torn mid-payload: drop the partial frame.
            return Ok(LoadedHistory {
                records,
                valid_bytes: offset as u64,
                dropped_bytes: rest as u64,
            });
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        if crc32(payload) != crc {
            return Err(DaemonError::history(format!(
                "CRC mismatch on the record at byte {offset}: the log is corrupt"
            )));
        }
        if payload.last() != Some(&b'\n') {
            return Err(DaemonError::history(format!(
                "record at byte {offset} is not newline-terminated"
            )));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| DaemonError::history(format!("record at byte {offset} is not UTF-8")))?;
        let record: HistoryRecord = serde_json::from_str(text).map_err(|e| {
            DaemonError::history(format!("record at byte {offset} fails to parse: {e:?}"))
        })?;
        records.push(record);
        offset += 8 + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RunHeader {
        RunHeader {
            version: HISTORY_VERSION,
            seed: 7,
            population: 64,
            batch_size: 8,
            reports_per_epoch: 32,
            batch_interval_s: 1.0,
            alpha: 1.5,
            capacity_per_committee: 1_000,
            n_min_fraction: 0.5,
            defense: false,
            adv_fraction: 0.0,
            adv_strategy: String::new(),
            se_iterations: 0,
        }
    }

    fn epoch(i: u64) -> EpochRecord {
        EpochRecord {
            summary: EpochSummary {
                epoch: i,
                t_open: i as f64 * 4.0,
                t_close: i as f64 * 4.0 + 4.0,
                reports: 32,
                offered_txs: 1_000 + i,
                quarantined: 0,
                adversarial: 0,
                admitted: 16,
                admitted_txs: 600 + i,
                utility: 123.5,
                ddl_s: 900.0,
                capacity: 32_000,
                n_min: 16,
                schedule_crc: 0xDEAD_BEEF,
            },
            alerts: Vec::new(),
            checkpoint: DaemonCheckpoint {
                cursor: 32 * (i + 1),
                clock: crate::epoch_clock::EpochClock::new(32, 1.0).unwrap(),
                defense: None,
                total_epochs: i + 1,
                total_reports: 32 * (i + 1),
                total_admitted_txs: 600 * (i + 1),
                se: None,
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let dir = std::env::temp_dir().join("mvcom-daemon-history-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.log");
        let mut w = HistoryWriter::create(&path).unwrap();
        w.append(&HistoryRecord::Header(header())).unwrap();
        w.append(&HistoryRecord::Epoch(Box::new(epoch(0)))).unwrap();
        w.append(&HistoryRecord::Epoch(Box::new(epoch(1)))).unwrap();
        let loaded = read_history(&path).unwrap();
        assert_eq!(loaded.dropped_bytes, 0);
        assert_eq!(loaded.valid_bytes, w.bytes());
        assert_eq!(loaded.records.len(), 3);
        assert_eq!(loaded.records[0], HistoryRecord::Header(header()));
        assert_eq!(loaded.records[2], HistoryRecord::Epoch(Box::new(epoch(1))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join("mvcom-daemon-history-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.log");
        let mut w = HistoryWriter::create(&path).unwrap();
        w.append(&HistoryRecord::Header(header())).unwrap();
        let intact = w.bytes();
        w.append(&HistoryRecord::Epoch(Box::new(epoch(0)))).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut at every prefix length inside the second frame: all of them
        // must be recognized as a torn append of exactly that frame.
        for cut in intact as usize..full.len() - 1 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let loaded = read_history(&path).unwrap();
            assert_eq!(loaded.records.len(), 1, "cut={cut}");
            assert_eq!(loaded.valid_bytes, intact, "cut={cut}");
            assert_eq!(loaded.dropped_bytes, cut as u64 - intact, "cut={cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_is_a_hard_error() {
        let dir = std::env::temp_dir().join("mvcom-daemon-history-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.log");
        let mut w = HistoryWriter::create(&path).unwrap();
        w.append(&HistoryRecord::Header(header())).unwrap();
        w.append(&HistoryRecord::Epoch(Box::new(epoch(0)))).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 20; // inside the second record's payload
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_history(&path).unwrap_err();
        assert!(format!("{err}").contains("CRC mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn implausible_length_is_a_hard_error() {
        let dir = std::env::temp_dir().join("mvcom-daemon-history-len");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.log");
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &frame).unwrap();
        assert!(read_history(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_existing_truncates_the_torn_tail() {
        let dir = std::env::temp_dir().join("mvcom-daemon-history-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.log");
        let mut w = HistoryWriter::create(&path).unwrap();
        w.append(&HistoryRecord::Header(header())).unwrap();
        let intact = w.bytes();
        // Simulate a torn append: half a frame of garbage-prefix bytes.
        let frame = encode_record(&HistoryRecord::Epoch(Box::new(epoch(0)))).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let loaded = read_history(&path).unwrap();
        assert!(loaded.dropped_bytes > 0);
        let mut w = HistoryWriter::append_existing(&path, loaded.valid_bytes).unwrap();
        w.append(&HistoryRecord::Epoch(Box::new(epoch(0)))).unwrap();
        let reloaded = read_history(&path).unwrap();
        assert_eq!(reloaded.records.len(), 2);
        assert_eq!(reloaded.dropped_bytes, 0);
        assert_eq!(intact + frame.len() as u64, reloaded.valid_bytes);
        std::fs::remove_file(&path).unwrap();
    }
}
