//! Threshold alerts over per-epoch scheduling outcomes.
//!
//! An operator arms thresholds at startup (`--alert-*` flags); after
//! every epoch closes, the [`AlertEngine`] compares the epoch's
//! [`EpochSummary`] against them. Each
//! breach fires every registered hook (the CLI prints to stderr; tests
//! capture into a buffer), is emitted as `alert_fired` telemetry by the
//! daemon loop, and is persisted in the epoch's history record — so an
//! alert survives the process that raised it.
//!
//! Alerts are level-triggered per epoch: an epoch below a threshold
//! fires once, and the next epoch below it fires again. There is no
//! latching or deduplication — the history log is the place to analyze
//! streaks.

use serde::{Deserialize, Serialize};

use crate::history::EpochSummary;

/// The alert conditions the daemon can arm. Disarmed thresholds (`None`)
/// never fire.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AlertConfig {
    /// Fire when an epoch's utility falls below this value.
    pub min_utility: Option<f64>,
    /// Fire when an epoch admits fewer committees than this.
    pub min_admitted: Option<u64>,
    /// Fire when the defense screens out more reports than this.
    pub max_quarantined: Option<u64>,
}

/// The alert conditions, as stable wire/CLI names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Epoch utility below `min_utility`.
    LowUtility,
    /// Admitted committees below `min_admitted`.
    LowAdmission,
    /// Quarantined reports above `max_quarantined`.
    HighQuarantine,
}

impl AlertKind {
    /// Every kind, in documentation order (OPERATIONS.md doc-sync).
    pub const ALL: [AlertKind; 3] = [
        AlertKind::LowUtility,
        AlertKind::LowAdmission,
        AlertKind::HighQuarantine,
    ];

    /// The kind's wire name, as written to history and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::LowUtility => "low_utility",
            AlertKind::LowAdmission => "low_admission",
            AlertKind::HighQuarantine => "high_quarantine",
        }
    }
}

/// One fired alert, as passed to hooks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// The epoch whose summary breached the threshold.
    pub epoch: u64,
    /// Which condition fired.
    pub kind: AlertKind,
    /// The armed threshold.
    pub threshold: f64,
    /// The observed value that breached it.
    pub observed: f64,
}

/// One fired alert, as persisted in the epoch's history record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// [`AlertKind::name`] of the condition.
    pub kind: String,
    /// The armed threshold.
    pub threshold: f64,
    /// The observed value that breached it.
    pub observed: f64,
}

/// A registered alert callback.
pub type AlertHook = Box<dyn FnMut(&Alert) + Send>;

/// Evaluates epoch summaries against the armed thresholds and dispatches
/// to hooks.
pub struct AlertEngine {
    config: AlertConfig,
    hooks: Vec<AlertHook>,
}

impl std::fmt::Debug for AlertEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlertEngine")
            .field("config", &self.config)
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

impl AlertEngine {
    /// An engine with the given thresholds and no hooks.
    pub fn new(config: AlertConfig) -> AlertEngine {
        AlertEngine {
            config,
            hooks: Vec::new(),
        }
    }

    /// The armed thresholds.
    pub fn config(&self) -> &AlertConfig {
        &self.config
    }

    /// Registers a hook invoked once per fired alert, in registration
    /// order.
    pub fn on_alert(&mut self, hook: impl FnMut(&Alert) + Send + 'static) {
        self.hooks.push(Box::new(hook));
    }

    /// Evaluates one epoch summary: fires hooks for each breach and
    /// returns the records to persist (deterministic order: utility,
    /// admission, quarantine).
    pub fn evaluate(&mut self, summary: &EpochSummary) -> Vec<AlertRecord> {
        let mut fired = Vec::new();
        if let Some(min) = self.config.min_utility {
            if summary.utility < min {
                fired.push(Alert {
                    epoch: summary.epoch,
                    kind: AlertKind::LowUtility,
                    threshold: min,
                    observed: summary.utility,
                });
            }
        }
        if let Some(min) = self.config.min_admitted {
            if summary.admitted < min {
                fired.push(Alert {
                    epoch: summary.epoch,
                    kind: AlertKind::LowAdmission,
                    threshold: min as f64,
                    observed: summary.admitted as f64,
                });
            }
        }
        if let Some(max) = self.config.max_quarantined {
            if summary.quarantined > max {
                fired.push(Alert {
                    epoch: summary.epoch,
                    kind: AlertKind::HighQuarantine,
                    threshold: max as f64,
                    observed: summary.quarantined as f64,
                });
            }
        }
        for alert in &fired {
            for hook in &mut self.hooks {
                hook(alert);
            }
        }
        fired
            .iter()
            .map(|a| AlertRecord {
                kind: a.kind.name().to_string(),
                threshold: a.threshold,
                observed: a.observed,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn summary(utility: f64, admitted: u64, quarantined: u64) -> EpochSummary {
        EpochSummary {
            epoch: 3,
            t_open: 0.0,
            t_close: 4.0,
            reports: 32,
            offered_txs: 1_000,
            quarantined,
            adversarial: 0,
            admitted,
            admitted_txs: 700,
            utility,
            ddl_s: 900.0,
            capacity: 32_000,
            n_min: 16,
            schedule_crc: 0,
        }
    }

    #[test]
    fn disarmed_thresholds_never_fire() {
        let mut engine = AlertEngine::new(AlertConfig::default());
        assert!(engine.evaluate(&summary(-1e9, 0, 999)).is_empty());
    }

    #[test]
    fn each_condition_fires_with_its_wire_name() {
        let mut engine = AlertEngine::new(AlertConfig {
            min_utility: Some(100.0),
            min_admitted: Some(20),
            max_quarantined: Some(2),
        });
        let records = engine.evaluate(&summary(50.0, 10, 5));
        let kinds: Vec<&str> = records.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(kinds, ["low_utility", "low_admission", "high_quarantine"]);
        assert_eq!(records[0].threshold, 100.0);
        assert_eq!(records[0].observed, 50.0);
        // A healthy epoch fires nothing.
        assert!(engine.evaluate(&summary(200.0, 25, 0)).is_empty());
    }

    #[test]
    fn hooks_see_every_fired_alert() {
        let seen: Arc<Mutex<Vec<(u64, &'static str)>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let mut engine = AlertEngine::new(AlertConfig {
            min_utility: Some(100.0),
            min_admitted: Some(20),
            max_quarantined: None,
        });
        engine.on_alert(move |a| {
            sink.lock()
                .unwrap_or_else(|p| p.into_inner())
                .push((a.epoch, a.kind.name()));
        });
        engine.evaluate(&summary(50.0, 10, 0));
        let seen = seen.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(*seen, [(3, "low_utility"), (3, "low_admission")]);
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<&str> = AlertKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AlertKind::ALL.len());
    }
}
