//! The daemon's error type.
//!
//! The workspace-wide [`mvcom_types::Error`] is `Clone + PartialEq` and
//! has no I/O variant — the right shape for pure scheduling code, the
//! wrong one for a process that owns files and sockets. The daemon wraps
//! it instead of extending it.

use std::fmt;

/// Convenience alias for daemon-facing results.
pub type Result<T, E = DaemonError> = std::result::Result<T, E>;

/// Errors produced by the daemon layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum DaemonError {
    /// A scheduling/defense/dataset layer error.
    Core(mvcom_types::Error),
    /// An operating-system I/O failure (history file, socket).
    Io(std::io::Error),
    /// The history log failed verification (corruption, config mismatch,
    /// serialization failure).
    History(String),
    /// An ingest line or stream failed to parse.
    Ingest(String),
    /// A daemon configuration parameter is out of its documented domain.
    Config {
        /// The offending parameter name.
        parameter: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Core(e) => write!(f, "{e}"),
            DaemonError::Io(e) => write!(f, "i/o error: {e}"),
            DaemonError::History(reason) => write!(f, "history log error: {reason}"),
            DaemonError::Ingest(reason) => write!(f, "ingest error: {reason}"),
            DaemonError::Config { parameter, reason } => {
                write!(f, "invalid daemon configuration `{parameter}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Core(e) => Some(e),
            DaemonError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvcom_types::Error> for DaemonError {
    fn from(e: mvcom_types::Error) -> DaemonError {
        DaemonError::Core(e)
    }
}

impl DaemonError {
    /// Shorthand constructor for [`DaemonError::Io`].
    pub fn io(e: std::io::Error) -> DaemonError {
        DaemonError::Io(e)
    }

    /// Shorthand constructor for [`DaemonError::History`].
    pub fn history(reason: impl Into<String>) -> DaemonError {
        DaemonError::History(reason.into())
    }

    /// Shorthand constructor for [`DaemonError::Ingest`].
    pub fn ingest(reason: impl Into<String>) -> DaemonError {
        DaemonError::Ingest(reason.into())
    }

    /// Shorthand constructor for [`DaemonError::Config`].
    pub fn config(parameter: &'static str, reason: impl Into<String>) -> DaemonError {
        DaemonError::Config {
            parameter,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        assert!(format!("{}", DaemonError::history("bad crc")).contains("history"));
        assert!(format!("{}", DaemonError::ingest("bad line")).contains("ingest"));
        assert!(format!("{}", DaemonError::config("seed", "nope")).contains("`seed`"));
        let core: DaemonError = mvcom_types::Error::invalid_instance("x").into();
        assert!(format!("{core}").contains("invalid problem instance"));
    }
}
