//! `mvcom-daemon` — MVCom scheduling as a long-running service.
//!
//! The library behind the `mvcom daemon` subcommand: a persistent
//! process that ingests a continuous stream of committee reports, closes
//! epochs on a logical clock, schedules each epoch with the SE engine
//! (optionally screening reports through the reputation defense), and
//! exposes live state to operators.
//!
//! The moving parts, one module each:
//!
//! * [`ingest`] — where reports come from: a seed-deterministic
//!   generator ([`SeededSource`]) or a JSONL feed ([`JsonlSource`]).
//! * [`epoch_clock`] — the logical clock ([`EpochClock`]): batches in,
//!   epochs out, no wall time anywhere.
//! * [`daemon`] — the loop itself ([`Daemon`]): ingest → schedule →
//!   defend → alert → persist.
//! * [`history`] — the crash-safe, append-only epoch log
//!   (length-prefixed, CRC-framed JSONL) and the checkpoint types that
//!   make `kill -9` recoverable with byte-identical subsequent history.
//! * [`http`] — the zero-dependency metrics snapshot endpoint
//!   ([`MetricsServer`]).
//! * [`alerts`] — operator-armed threshold alerts ([`AlertEngine`]).
//!
//! The operator-facing contract — flags, the epoch lifecycle, the log
//! format, recovery procedure, alert and endpoint semantics — is
//! documented in `OPERATIONS.md` at the repository root, and a doc-sync
//! test keeps that file honest against [`DAEMON_FLAGS`], the history
//! record kinds and the alert kinds.
//!
//! # Example
//!
//! Run three epochs against a seeded stream and read the totals:
//!
//! ```
//! use mvcom_daemon::{AlertConfig, AlertEngine, Daemon, DaemonConfig, SeededSource};
//!
//! let dir = std::env::temp_dir().join(format!("mvcom-daemon-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let history = dir.join("history.log");
//!
//! let config = DaemonConfig { max_epochs: 3, se_iterations: 200, ..DaemonConfig::default() };
//! let source = SeededSource::new(config.seed, config.population)?;
//! let mut daemon = Daemon::open(
//!     config.clone(),
//!     Box::new(source),
//!     &history,
//!     /* resume = */ false,
//!     mvcom_obs::Obs::off(),
//!     AlertEngine::new(AlertConfig::default()),
//! )?;
//! let closed = daemon.run(|summary| {
//!     assert!(summary.admitted > 0);
//! })?;
//! assert_eq!(closed, 3);
//! std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod alerts;
pub mod daemon;
pub mod epoch_clock;
pub mod error;
pub mod history;
pub mod http;
pub mod ingest;

pub use alerts::{Alert, AlertConfig, AlertEngine, AlertKind, AlertRecord};
pub use daemon::{Daemon, DaemonConfig, Startup};
pub use epoch_clock::EpochClock;
pub use error::{DaemonError, Result};
pub use history::{
    crc32, read_history, DaemonCheckpoint, EpochRecord, EpochSummary, HistoryRecord, HistoryWriter,
    LoadedHistory, RunHeader, HISTORY_VERSION, RECORD_KINDS,
};
pub use http::{MetricsServer, SnapshotCell};
pub use ingest::{IngestSource, JsonlSource, SeededSource};

/// One CLI flag of the `mvcom daemon` subcommand.
///
/// The single source of truth for the subcommand's surface: the binary
/// renders its usage text from this table, and the OPERATIONS.md
/// doc-sync test asserts every row is documented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagSpec {
    /// The flag, with leading dashes (`--seed`).
    pub flag: &'static str,
    /// The value placeholder (`N`, `FILE`, `on|off`, …).
    pub value: &'static str,
    /// The default, as the CLI would parse it.
    pub default: &'static str,
    /// One-line help.
    pub help: &'static str,
}

/// Every flag `mvcom daemon` accepts.
pub const DAEMON_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        flag: "--source",
        value: "seeded|stdin",
        default: "seeded",
        help: "report stream: deterministic seeded generator, or JSONL on stdin",
    },
    FlagSpec {
        flag: "--seed",
        value: "N",
        default: "7",
        help: "master seed (stream, per-epoch SE, adversary)",
    },
    FlagSpec {
        flag: "--committees",
        value: "N",
        default: "96",
        help: "committee population of the seeded stream",
    },
    FlagSpec {
        flag: "--batch-size",
        value: "N",
        default: "8",
        help: "reports ingested per batch",
    },
    FlagSpec {
        flag: "--epoch-reports",
        value: "N",
        default: "48",
        help: "reports that close an epoch (must be <= --committees for seeded streams)",
    },
    FlagSpec {
        flag: "--batch-interval",
        value: "SECS",
        default: "0.5",
        help: "logical seconds each batch advances the clock",
    },
    FlagSpec {
        flag: "--epochs",
        value: "N",
        default: "0",
        help: "stop after N epochs (0 = run until killed or the feed drains)",
    },
    FlagSpec {
        flag: "--alpha",
        value: "X",
        default: "1.5",
        help: "throughput weight of the scheduling objective",
    },
    FlagSpec {
        flag: "--capacity",
        value: "N",
        default: "1000",
        help: "final-block tx capacity per screened committee",
    },
    FlagSpec {
        flag: "--n-min-frac",
        value: "X",
        default: "0.5",
        help: "minimum admitted committees, as a fraction of the screened set",
    },
    FlagSpec {
        flag: "--defense",
        value: "on|off",
        default: "off",
        help: "screen reports through the reputation defense",
    },
    FlagSpec {
        flag: "--adv-fraction",
        value: "X",
        default: "0",
        help: "fraction of committees controlled by the adversary",
    },
    FlagSpec {
        flag: "--adv-strategy",
        value: "NAME",
        default: "",
        help: "adversary strategy (required when --adv-fraction > 0)",
    },
    FlagSpec {
        flag: "--se-iters",
        value: "N",
        default: "0",
        help: "SE iteration budget per epoch (0 = paper default)",
    },
    FlagSpec {
        flag: "--history",
        value: "FILE",
        default: "mvcom-history.log",
        help: "append-only epoch history log",
    },
    FlagSpec {
        flag: "--resume",
        value: "on|off",
        default: "on",
        help: "replay an existing history and resume from its last checkpoint",
    },
    FlagSpec {
        flag: "--http",
        value: "ADDR",
        default: "",
        help: "serve the metrics snapshot endpoint on ADDR (e.g. 127.0.0.1:9464)",
    },
    FlagSpec {
        flag: "--throttle-ms",
        value: "MS",
        default: "0",
        help: "sleep after each ingest batch (pacing only; never touches the clock)",
    },
    FlagSpec {
        flag: "--alert-min-utility",
        value: "X",
        default: "",
        help: "fire low_utility when an epoch's utility falls below X",
    },
    FlagSpec {
        flag: "--alert-min-admitted",
        value: "N",
        default: "",
        help: "fire low_admission when an epoch admits fewer than N committees",
    },
    FlagSpec {
        flag: "--alert-max-quarantined",
        value: "N",
        default: "",
        help: "fire high_quarantine when the defense screens out more than N reports",
    },
    FlagSpec {
        flag: "--obs-out",
        value: "FILE",
        default: "",
        help: "write telemetry events as JSONL to FILE",
    },
    FlagSpec {
        flag: "--obs-level",
        value: "LEVEL",
        default: "summary",
        help: "telemetry level: off, summary, events, or debug",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_unique_and_well_formed() {
        let mut flags: Vec<&str> = DAEMON_FLAGS.iter().map(|f| f.flag).collect();
        assert!(flags.iter().all(|f| f.starts_with("--")));
        flags.sort_unstable();
        flags.dedup();
        assert_eq!(flags.len(), DAEMON_FLAGS.len());
    }
}
