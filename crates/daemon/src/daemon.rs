//! The daemon loop: ingest → epoch close → SE schedule → defend → alert
//! → persist, forever.
//!
//! One [`Daemon`] owns exactly one thread of execution; every side effect
//! of an epoch — telemetry, metrics, the history append, the snapshot
//! render — happens inside [`Daemon::step_epoch`], in a fixed order. The
//! only concurrency in the process is the read-only metrics endpoint
//! ([`crate::http`]), which shares nothing but a rendered string.
//!
//! # Determinism and crash recovery
//!
//! Everything the loop does is a pure function of the [`DaemonConfig`]
//! and the ingest stream: the epoch clock counts batches, the SE engine
//! derives its seed from `(seed, epoch)`, the adversary and defense are
//! seeded/RNG-free, and no code here reads the wall clock (the workspace
//! D1 lint enforces that). Each epoch's history record embeds a full
//! [`DaemonCheckpoint`], so a `kill -9` at *any* byte loses at most the
//! in-flight epoch — which [`Daemon::open`] re-derives on restart from
//! the last intact record, appending bytes identical to the ones an
//! uninterrupted run would have written. The recovery integration tests
//! assert that equality literally, with `assert_eq!` over file bytes.

use std::collections::BTreeSet;
use std::path::Path;
use std::time::Duration;

use mvcom_core::defense::{DefenseConfig, DefenseEngine, DefenseObservation};
use mvcom_core::problem::InstanceBuilder;
use mvcom_core::se::{SeCheckpoint, SeConfig, SeEngine};
use mvcom_dataset::adversary::{build_adversary, Adversary, AdversaryConfig, CommitteeReport};
use mvcom_obs::{obs_event, MetricsRegistry, Obs};
use mvcom_types::{CommitteeId, ShardInfo};

use crate::alerts::AlertEngine;
use crate::epoch_clock::EpochClock;
use crate::error::{DaemonError, Result};
use crate::history::{
    crc32, read_history, DaemonCheckpoint, EpochRecord, EpochSummary, HistoryRecord, HistoryWriter,
    RunHeader, HISTORY_VERSION,
};
use crate::http::SnapshotCell;
use crate::ingest::IngestSource;

/// Everything the daemon's behaviour depends on, plus runtime pacing.
///
/// The first block of fields is determinism-relevant and is frozen into
/// the history [`RunHeader`]; the pacing fields (`max_epochs`,
/// `throttle_ms`) only decide how much of the run happens and how fast,
/// never which bytes it produces.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Master seed: forks the seeded source, the per-epoch SE engines and
    /// the adversary.
    pub seed: u64,
    /// Committee population of the seeded source (informational for
    /// stdin feeds; frozen into the header either way).
    pub population: u32,
    /// Reports requested per ingest batch.
    pub batch_size: u32,
    /// Reports that fill one epoch.
    pub reports_per_epoch: u32,
    /// Logical seconds one batch advances the clock by.
    pub batch_interval_s: f64,
    /// Throughput weight `α` of the per-epoch instance.
    pub alpha: f64,
    /// Final-block capacity per screened committee (`Ĉ = c·|I|`).
    pub capacity_per_committee: u64,
    /// `N_min` as a fraction of the screened shard count.
    pub n_min_fraction: f64,
    /// Screen reports through the reputation defense layer.
    pub defense: bool,
    /// Fraction of committees the adversary controls (0 disables).
    pub adv_fraction: f64,
    /// Adversary strategy (`misreport`|`freerider`|`starver`; "" = none).
    pub adv_strategy: String,
    /// SE iteration budget per epoch (0 = `SeConfig::paper` default).
    pub se_iterations: u64,
    /// Stop after this many epochs (0 = run until the source drains or
    /// the process dies).
    pub max_epochs: u64,
    /// Sleep this long after each ingest batch — pacing for smoke tests
    /// and demos; does not touch the logical clock.
    pub throttle_ms: u64,
}

impl Default for DaemonConfig {
    /// Paper-flavoured defaults: 96 committees, 48-report epochs in
    /// batches of 8, `α = 1.5`, `Ĉ = 1000·|I|`, `N_min = 0.5·|I|`.
    fn default() -> DaemonConfig {
        DaemonConfig {
            seed: 7,
            population: 96,
            batch_size: 8,
            reports_per_epoch: 48,
            batch_interval_s: 0.5,
            alpha: 1.5,
            capacity_per_committee: 1_000,
            n_min_fraction: 0.5,
            defense: false,
            adv_fraction: 0.0,
            adv_strategy: String::new(),
            se_iterations: 0,
            max_epochs: 0,
            throttle_ms: 0,
        }
    }
}

impl DaemonConfig {
    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] naming the offending parameter.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(DaemonError::config("batch-size", "must be positive"));
        }
        if self.reports_per_epoch == 0 {
            return Err(DaemonError::config("epoch-reports", "must be positive"));
        }
        if !self.batch_interval_s.is_finite() || self.batch_interval_s <= 0.0 {
            return Err(DaemonError::config(
                "batch-interval",
                format!("must be positive and finite, got {}", self.batch_interval_s),
            ));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 {
            return Err(DaemonError::config(
                "alpha",
                format!("must be positive and finite, got {}", self.alpha),
            ));
        }
        if self.capacity_per_committee == 0 {
            return Err(DaemonError::config("capacity", "must be positive"));
        }
        if !self.n_min_fraction.is_finite() || !(0.0..=1.0).contains(&self.n_min_fraction) {
            return Err(DaemonError::config(
                "n-min-frac",
                format!("must be within [0, 1], got {}", self.n_min_fraction),
            ));
        }
        if !self.adv_fraction.is_finite() || !(0.0..=1.0).contains(&self.adv_fraction) {
            return Err(DaemonError::config(
                "adv-fraction",
                format!("must be within [0, 1], got {}", self.adv_fraction),
            ));
        }
        if self.adv_fraction > 0.0 && self.adv_strategy.is_empty() {
            return Err(DaemonError::config(
                "adv-strategy",
                "required when adv-fraction > 0",
            ));
        }
        Ok(())
    }

    /// The determinism-relevant slice, as frozen into the history log.
    pub fn header(&self) -> RunHeader {
        RunHeader {
            version: HISTORY_VERSION,
            seed: self.seed,
            population: self.population,
            batch_size: self.batch_size,
            reports_per_epoch: self.reports_per_epoch,
            batch_interval_s: self.batch_interval_s,
            alpha: self.alpha,
            capacity_per_committee: self.capacity_per_committee,
            n_min_fraction: self.n_min_fraction,
            defense: self.defense,
            adv_fraction: self.adv_fraction,
            adv_strategy: self.adv_strategy.clone(),
            se_iterations: self.se_iterations,
        }
    }
}

/// How [`Daemon::open`] started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Startup {
    /// A fresh history file was created.
    Fresh,
    /// An existing history was replayed and resumed.
    Resumed {
        /// Epochs already in the log.
        epochs: u64,
        /// Source cursor restored from the last checkpoint.
        cursor: u64,
        /// Torn-tail bytes dropped during replay.
        dropped_bytes: u64,
    },
}

/// Lifetime totals, mirrored into every checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Totals {
    epochs: u64,
    reports: u64,
    admitted_txs: u64,
}

/// The long-running scheduling service. See the [module docs](self).
pub struct Daemon {
    config: DaemonConfig,
    source: Box<dyn IngestSource>,
    clock: EpochClock,
    defense: Option<DefenseEngine>,
    adversary: Option<Box<dyn Adversary>>,
    history: HistoryWriter,
    alerts: AlertEngine,
    obs: Obs,
    metrics: MetricsRegistry,
    snapshot: SnapshotCell,
    totals: Totals,
    startup: Startup,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("config", &self.config)
            .field("clock", &self.clock)
            .field("totals", &self.totals)
            .field("startup", &self.startup)
            .finish_non_exhaustive()
    }
}

/// Golden-ratio mixer for per-epoch SE seeds.
const EPOCH_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl Daemon {
    /// Opens the daemon against `history_path`.
    ///
    /// With `resume` set and a non-empty history present, the log is
    /// replayed: its header must match `config`, the last epoch record's
    /// checkpoint restores the clock/defense/totals, the source is
    /// fast-forwarded to the checkpointed cursor, and a torn tail (if
    /// any) is truncated. Otherwise a fresh log is created (truncating
    /// whatever was there) and the header written.
    ///
    /// # Errors
    ///
    /// Configuration errors, corrupt histories
    /// ([`DaemonError::History`]), header/config mismatches, and I/O.
    pub fn open(
        config: DaemonConfig,
        source: Box<dyn IngestSource>,
        history_path: &Path,
        resume: bool,
        obs: Obs,
        alerts: AlertEngine,
    ) -> Result<Daemon> {
        config.validate()?;
        let clock = EpochClock::new(u64::from(config.reports_per_epoch), config.batch_interval_s)?;
        let defense = if config.defense {
            Some(DefenseEngine::new(DefenseConfig::paper())?.with_obs(obs.clone()))
        } else {
            None
        };
        let adversary = if config.adv_fraction > 0.0 {
            Some(build_adversary(
                &config.adv_strategy,
                AdversaryConfig::new(config.adv_fraction, config.seed)?,
            )?)
        } else {
            None
        };
        let metrics = MetricsRegistry::new();
        metrics.register_histogram(
            "daemon.epoch_admitted_txs",
            &[100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0],
        );
        let mut source = source;
        let mut clock = clock;
        let mut defense = defense;
        let mut totals = Totals::default();
        let mut startup = Startup::Fresh;
        let resuming = resume
            && std::fs::metadata(history_path)
                .map(|m| m.len() > 0)
                .unwrap_or(false);
        let history = if resuming {
            let loaded = read_history(history_path)?;
            let Some(HistoryRecord::Header(header)) = loaded.records.first() else {
                return Err(DaemonError::history(
                    "history does not start with a Header record",
                ));
            };
            let expected = config.header();
            if *header != expected {
                return Err(DaemonError::history(format!(
                    "history header does not match the daemon configuration \
                     (on disk: {header:?}; configured: {expected:?}); \
                     refusing to mix incompatible runs"
                )));
            }
            let last_epoch = loaded.records.iter().rev().find_map(|r| match r {
                HistoryRecord::Epoch(e) => Some(e),
                HistoryRecord::Header(_) => None,
            });
            if let Some(epoch) = last_epoch {
                let ckpt = &epoch.checkpoint;
                clock = ckpt.clock;
                totals = Totals {
                    epochs: ckpt.total_epochs,
                    reports: ckpt.total_reports,
                    admitted_txs: ckpt.total_admitted_txs,
                };
                defense = match (&ckpt.defense, config.defense) {
                    (Some(d), true) => {
                        Some(DefenseEngine::from_checkpoint(d)?.with_obs(obs.clone()))
                    }
                    (None, false) => None,
                    _ => {
                        return Err(DaemonError::history(
                            "checkpoint defense state disagrees with the --defense flag",
                        ))
                    }
                };
                source.fast_forward(ckpt.cursor)?;
            }
            startup = Startup::Resumed {
                epochs: totals.epochs,
                cursor: source.cursor(),
                dropped_bytes: loaded.dropped_bytes,
            };
            obs_event!(
                obs, "recovery_replay", clock.now(),
                "epochs" => totals.epochs,
                "cursor" => source.cursor(),
                "dropped_bytes" => loaded.dropped_bytes,
            );
            metrics.incr("daemon.recoveries");
            // Truncate the torn tail (if any) and position for appends.
            HistoryWriter::append_existing(history_path, loaded.valid_bytes)?
        } else {
            let mut writer = HistoryWriter::create(history_path)?;
            writer.append(&HistoryRecord::Header(config.header()))?;
            writer
        };
        let daemon = Daemon {
            config,
            source,
            clock,
            defense,
            adversary,
            history,
            alerts,
            obs,
            metrics,
            snapshot: SnapshotCell::new(),
            totals,
            startup,
        };
        daemon.render_snapshot();
        Ok(daemon)
    }

    /// How this daemon started (fresh vs. resumed).
    pub fn startup(&self) -> Startup {
        self.startup
    }

    /// The configuration in force.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The logical clock.
    pub fn clock(&self) -> &EpochClock {
        &self.clock
    }

    /// Bytes in the history file.
    pub fn history_bytes(&self) -> u64 {
        self.history.bytes()
    }

    /// The cell the metrics endpoint serves; hand a clone to
    /// [`MetricsServer::start`](crate::http::MetricsServer::start).
    pub fn snapshot_cell(&self) -> SnapshotCell {
        self.snapshot.clone()
    }

    /// The always-on metrics registry backing the snapshot.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Registers an alert hook (see [`AlertEngine::on_alert`]).
    pub fn on_alert(&mut self, hook: impl FnMut(&crate::alerts::Alert) + Send + 'static) {
        self.alerts.on_alert(hook);
    }

    /// Ingests and closes one epoch; `None` when the source drained
    /// before the epoch filled (the partial epoch is discarded — it was
    /// never scheduled, so it is not history).
    ///
    /// # Errors
    ///
    /// Ingest failures, scheduling failures, history I/O.
    pub fn step_epoch(&mut self) -> Result<Option<EpochSummary>> {
        let epoch = self.clock.epoch();
        let t_open = self.clock.now();
        obs_event!(
            self.obs, "epoch_open", t_open,
            "epoch" => epoch,
            "planned" => self.clock.reports_per_epoch(),
        );
        let mut truth: Vec<ShardInfo> = Vec::with_capacity(self.clock.remaining() as usize);
        let mut batch: Vec<ShardInfo> = Vec::new();
        let mut batch_idx = 0u64;
        while !self.clock.is_full() {
            let want = self
                .clock
                .remaining()
                .min(u64::from(self.config.batch_size)) as usize;
            let got = self.source.next_batch(&mut batch, want)?;
            if got == 0 {
                return Ok(None);
            }
            self.clock.note_batch(got as u64);
            let txs: u64 = batch.iter().map(ShardInfo::tx_count).sum();
            obs_event!(
                self.obs, "ingest_batch", self.clock.now(),
                "epoch" => epoch,
                "batch" => batch_idx,
                "reports" => got,
                "txs" => txs,
            );
            self.metrics.add("daemon.reports", got as u64);
            self.metrics.add("daemon.offered_txs", txs);
            truth.append(&mut batch);
            batch_idx += 1;
            if self.config.throttle_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.config.throttle_ms));
            }
        }
        let summary = self.close_epoch(epoch, t_open, &truth)?;
        Ok(Some(summary))
    }

    /// Runs epochs until the configured bound or source exhaustion,
    /// invoking `on_epoch` after each close; returns the epochs closed by
    /// this call.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Daemon::step_epoch`] failure.
    pub fn run(&mut self, mut on_epoch: impl FnMut(&EpochSummary)) -> Result<u64> {
        let mut closed = 0u64;
        while self.config.max_epochs == 0 || self.totals.epochs < self.config.max_epochs {
            match self.step_epoch()? {
                Some(summary) => {
                    on_epoch(&summary);
                    closed += 1;
                }
                None => break,
            }
        }
        self.obs.flush();
        Ok(closed)
    }

    /// Schedules the full epoch and persists its record.
    fn close_epoch(
        &mut self,
        epoch: u64,
        t_open: f64,
        truth: &[ShardInfo],
    ) -> Result<EpochSummary> {
        let t_close = self.clock.now();
        // 1. Strategic committees file their (possibly perturbed) reports.
        let reports: Vec<CommitteeReport> = match &self.adversary {
            Some(adv) => adv.act(epoch, truth),
            None => truth.iter().copied().map(CommitteeReport::honest).collect(),
        };
        let adversarial = reports.iter().filter(|r| r.adversarial).count() as u64;
        let reported: Vec<ShardInfo> = reports.iter().map(|r| r.reported).collect();
        // 2. The defense screens what the scheduler is allowed to see.
        let n_min = (reported.len() as f64 * self.config.n_min_fraction).round() as usize;
        let screened: Vec<ShardInfo> = match &mut self.defense {
            Some(d) => d.admissible(epoch, &reported, n_min),
            None => reported.clone(),
        };
        let quarantined = (reported.len() - screened.len()) as u64;
        // 3. SE schedules over the screened reports.
        let n_min = n_min.min(screened.len());
        let capacity = self
            .config
            .capacity_per_committee
            .saturating_mul(screened.len() as u64);
        let outcome = self.schedule(epoch, &screened, n_min, capacity);
        let admitted_set: BTreeSet<CommitteeId> = outcome.admitted.iter().copied().collect();
        // 4. Stage-4 settlement: the defense sees realized behaviour —
        // true latency for every committee, true size only for admitted
        // shards (an unadmitted shard's contents are never observed).
        if let Some(defense) = &mut self.defense {
            let observations: Vec<DefenseObservation> = reports
                .iter()
                .map(|r| DefenseObservation {
                    committee: r.committee(),
                    reported_size: r.reported.tx_count(),
                    reported_latency: r.reported.two_phase_latency(),
                    observed_latency: r.truth.two_phase_latency(),
                    observed_size: admitted_set
                        .contains(&r.committee())
                        .then_some(r.truth.tx_count()),
                })
                .collect();
            defense.end_epoch(epoch, &observations);
        }
        // 5. Summarize, alert, persist — one record, one append.
        self.clock.close_epoch();
        let offered_txs: u64 = truth.iter().map(ShardInfo::tx_count).sum();
        let admitted_txs: u64 = truth
            .iter()
            .filter(|s| admitted_set.contains(&s.committee()))
            .map(ShardInfo::tx_count)
            .sum();
        self.totals.epochs += 1;
        self.totals.reports += truth.len() as u64;
        self.totals.admitted_txs += admitted_txs;
        let mut id_bytes = Vec::with_capacity(admitted_set.len() * 4);
        for id in &admitted_set {
            id_bytes.extend_from_slice(&id.value().to_le_bytes());
        }
        let summary = EpochSummary {
            epoch,
            t_open,
            t_close,
            reports: truth.len() as u64,
            offered_txs,
            quarantined,
            adversarial,
            admitted: admitted_set.len() as u64,
            admitted_txs,
            utility: outcome.utility,
            ddl_s: outcome.ddl_s,
            capacity,
            n_min: n_min as u64,
            schedule_crc: crc32(&id_bytes),
        };
        let alerts = self.alerts.evaluate(&summary);
        obs_event!(
            self.obs, "epoch_close", t_close,
            "epoch" => epoch,
            "reports" => summary.reports,
            "offered_txs" => summary.offered_txs,
            "admitted" => summary.admitted,
            "admitted_txs" => summary.admitted_txs,
            "utility" => summary.utility,
            "alerts" => alerts.len(),
        );
        for alert in &alerts {
            obs_event!(
                self.obs, "alert_fired", t_close,
                "epoch" => epoch,
                "alert" => alert.kind.as_str(),
                "threshold" => alert.threshold,
                "observed" => alert.observed,
            );
        }
        let record = HistoryRecord::Epoch(Box::new(EpochRecord {
            summary: summary.clone(),
            alerts: alerts.clone(),
            checkpoint: DaemonCheckpoint {
                cursor: self.source.cursor(),
                clock: self.clock,
                defense: self.defense.as_ref().map(DefenseEngine::checkpoint),
                total_epochs: self.totals.epochs,
                total_reports: self.totals.reports,
                total_admitted_txs: self.totals.admitted_txs,
                se: outcome.se,
            },
        }));
        let bytes = self.history.append(&record)?;
        obs_event!(
            self.obs, "history_append", t_close,
            "record" => record.kind(),
            "bytes" => bytes,
        );
        // 6. Metrics and the endpoint snapshot.
        self.metrics.incr("daemon.epochs");
        self.metrics.add("daemon.admitted_txs", admitted_txs);
        self.metrics.add("daemon.quarantined", quarantined);
        self.metrics.add("daemon.alerts", alerts.len() as u64);
        self.metrics
            .set_gauge("daemon.epoch", self.clock.epoch() as f64);
        self.metrics.set_gauge("daemon.clock_s", self.clock.now());
        self.metrics.set_gauge("daemon.utility", summary.utility);
        self.metrics
            .set_gauge("daemon.cursor", self.source.cursor() as f64);
        self.metrics
            .set_gauge("daemon.history_bytes", self.history.bytes() as f64);
        self.metrics
            .observe("daemon.epoch_admitted_txs", admitted_txs as f64);
        self.render_snapshot();
        Ok(summary)
    }

    /// Runs the SE engine over the screened shard set; degenerate epochs
    /// (fewer than two shards, or an unbuildable instance) fall back to
    /// admitting everything, like vanilla Elastico.
    fn schedule(
        &self,
        epoch: u64,
        screened: &[ShardInfo],
        n_min: usize,
        capacity: u64,
    ) -> ScheduleOutcome {
        let fallback = || ScheduleOutcome::admit_all(self.config.alpha, screened);
        if screened.len() < 2 {
            return fallback();
        }
        let instance = match InstanceBuilder::new()
            .alpha(self.config.alpha)
            .capacity(capacity)
            .n_min(n_min)
            .shards(screened.to_vec())
            .build()
        {
            Ok(instance) => instance,
            Err(_) => return fallback(),
        };
        let epoch_seed = self.config.seed ^ epoch.wrapping_mul(EPOCH_SEED_MIX);
        let mut se_config = SeConfig::paper(epoch_seed);
        if self.config.se_iterations > 0 {
            se_config = se_config.with_max_iterations(self.config.se_iterations);
        }
        let budget = se_config.max_iterations;
        let mut engine = match SeEngine::new(&instance, se_config) {
            Ok(engine) => engine.with_obs(self.obs.clone()),
            Err(_) => return fallback(),
        };
        while engine.iteration() < budget && !engine.is_converged() {
            engine.step();
        }
        // The checkpoint captures the solver state *before* finalization:
        // `SeEngine::from_checkpoint(…)` + `finish()` reproduces the
        // outcome below exactly (pinned by an integration test).
        let se = engine.checkpoint();
        let outcome = engine.finish();
        ScheduleOutcome {
            admitted: outcome
                .best_solution
                .iter_selected()
                .map(|i| instance.shards()[i].committee())
                .collect(),
            utility: outcome.best_utility,
            ddl_s: instance.ddl().as_secs(),
            se: Some(se),
        }
    }

    /// Renders the registry into the endpoint cell.
    fn render_snapshot(&self) {
        self.snapshot.set(self.metrics.snapshot_json());
    }
}

/// What [`Daemon::schedule`] decided for one epoch.
struct ScheduleOutcome {
    admitted: Vec<CommitteeId>,
    utility: f64,
    ddl_s: f64,
    se: Option<SeCheckpoint>,
}

impl ScheduleOutcome {
    /// The admit-everything fallback: utility is the MaxArrival objective
    /// of the full selection.
    fn admit_all(alpha: f64, screened: &[ShardInfo]) -> ScheduleOutcome {
        let ddl_s = screened
            .iter()
            .map(|s| s.two_phase_latency().as_secs())
            .fold(0.0_f64, f64::max);
        let utility = screened
            .iter()
            .map(|s| alpha * s.tx_count() as f64 - (ddl_s - s.two_phase_latency().as_secs()))
            .sum();
        ScheduleOutcome {
            admitted: screened.iter().map(ShardInfo::committee).collect(),
            utility,
            ddl_s,
            se: None,
        }
    }
}
