//! Ingest sources: where the daemon's committee reports come from.
//!
//! Two implementations share the [`IngestSource`] trait:
//!
//! * [`SeededSource`] — an unbounded, deterministic report stream grown
//!   from a seed, mirroring `mvcom_dataset::ShardStream`'s per-report
//!   draw order (tx count from a with-replacement trace-block draw, then
//!   one two-phase latency) over a *fixed committee population* that the
//!   stream cycles through. Determinism is what makes crash recovery
//!   trivial: [`IngestSource::fast_forward`] regenerates and discards the
//!   already-consumed prefix, landing the RNG in exactly the state the
//!   killed process had at its last checkpoint.
//! * [`JsonlSource`] — reports parsed from a `BufRead` of JSONL lines
//!   (`{"committee":N,"txs":N,"latency_s":X}`), for piping real feeds
//!   into the daemon. Fast-forward skips lines, so recovery works as long
//!   as the operator replays the same feed.
//!
//! The `cursor` is the count of reports ever produced — the single
//! number a [`DaemonCheckpoint`](crate::history::DaemonCheckpoint) needs
//! to rewind ingestion.

use std::io::BufRead;

use rand::Rng as _;
use serde::Deserialize;

use mvcom_dataset::{LatencyConfig, Trace, TraceConfig};
use mvcom_simnet::SimRng;
use mvcom_types::{CommitteeId, ShardInfo};

use crate::error::{DaemonError, Result};

/// A resumable, batched stream of committee reports.
pub trait IngestSource {
    /// Clears `buf` and fills it with up to `max` reports; returns how
    /// many were produced. `0` means the source is exhausted for good
    /// (a [`SeededSource`] never is).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Ingest`] on malformed input or I/O failure.
    fn next_batch(&mut self, buf: &mut Vec<ShardInfo>, max: usize) -> Result<usize>;

    /// Reports produced over the source's lifetime.
    fn cursor(&self) -> u64;

    /// Advances a *fresh* source to `cursor`, discarding everything before
    /// it — the recovery path.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Ingest`] when the source cannot reach `cursor`
    /// (already past it, or the stream ends first).
    fn fast_forward(&mut self, cursor: u64) -> Result<()>;
}

/// Number of trace blocks backing a [`SeededSource`]. Small enough to
/// regenerate instantly, large enough for a realistic tx-count mix.
const SEEDED_TRACE_BLOCKS: usize = 400;

/// An unbounded deterministic report stream over a fixed population.
///
/// Committee `k` files the reports at cursor positions
/// `k, k + population, k + 2·population, …` — every committee reports
/// exactly once per `population` reports, so an epoch sized at or below
/// the population never sees duplicate committee ids.
#[derive(Debug)]
pub struct SeededSource {
    trace: Trace,
    latency: LatencyConfig,
    rng: SimRng,
    population: u32,
    produced: u64,
}

impl SeededSource {
    /// A source seeded with `seed` over `population` committees.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] when `population` is zero.
    pub fn new(seed: u64, population: u32) -> Result<SeededSource> {
        if population == 0 {
            return Err(DaemonError::config(
                "committees",
                "the population must be positive",
            ));
        }
        Ok(SeededSource {
            trace: Trace::generate(TraceConfig::tiny(SEEDED_TRACE_BLOCKS), seed),
            latency: LatencyConfig::paper(),
            rng: mvcom_simnet::rng::master(seed),
            population,
            produced: 0,
        })
    }

    fn produce_one(&mut self) -> ShardInfo {
        let blocks = self.trace.blocks();
        let txs = blocks[self.rng.gen_range(0..blocks.len())].txs;
        let id = CommitteeId((self.produced % u64::from(self.population)) as u32);
        self.produced += 1;
        ShardInfo::new(id, txs, self.latency.sample(&mut self.rng))
    }
}

impl IngestSource for SeededSource {
    fn next_batch(&mut self, buf: &mut Vec<ShardInfo>, max: usize) -> Result<usize> {
        buf.clear();
        buf.extend((0..max).map(|_| self.produce_one()));
        Ok(max)
    }

    fn cursor(&self) -> u64 {
        self.produced
    }

    fn fast_forward(&mut self, cursor: u64) -> Result<()> {
        if cursor < self.produced {
            return Err(DaemonError::ingest(format!(
                "cannot rewind a seeded source from {} to {cursor}; build a fresh one",
                self.produced
            )));
        }
        // O(cursor) regeneration. At recovery the cursor is at most one
        // run's worth of reports; regenerating them costs two RNG draws
        // each — microseconds per million reports, and the price of
        // keeping the checkpoint a single integer.
        while self.produced < cursor {
            let _ = self.produce_one();
        }
        Ok(())
    }
}

/// One line of a JSONL ingest feed.
#[derive(Debug, Clone, Copy, PartialEq, Deserialize)]
struct JsonlReport {
    committee: u32,
    txs: u64,
    latency_s: f64,
}

/// Reports parsed line-by-line from a reader (stdin, a file, a pipe).
#[derive(Debug)]
pub struct JsonlSource<R> {
    input: R,
    produced: u64,
    line_no: u64,
}

impl<R: BufRead> JsonlSource<R> {
    /// Wraps a buffered reader of JSONL report lines.
    pub fn new(input: R) -> JsonlSource<R> {
        JsonlSource {
            input,
            produced: 0,
            line_no: 0,
        }
    }

    /// Reads the next report, skipping blank lines; `None` at EOF.
    fn read_one(&mut self) -> Result<Option<ShardInfo>> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .input
                .read_line(&mut line)
                .map_err(|e| DaemonError::ingest(format!("read line: {e}")))?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            let report: JsonlReport = serde_json::from_str(line.trim()).map_err(|e| {
                DaemonError::ingest(format!("line {}: malformed report: {e:?}", self.line_no))
            })?;
            if !report.latency_s.is_finite() || report.latency_s <= 0.0 {
                return Err(DaemonError::ingest(format!(
                    "line {}: latency_s must be positive and finite, got {}",
                    self.line_no, report.latency_s
                )));
            }
            self.produced += 1;
            return Ok(Some(ShardInfo::new(
                CommitteeId(report.committee),
                report.txs,
                mvcom_types::TwoPhaseLatency::from_total(mvcom_types::SimTime::from_secs(
                    report.latency_s,
                )),
            )));
        }
    }
}

impl<R: BufRead> IngestSource for JsonlSource<R> {
    fn next_batch(&mut self, buf: &mut Vec<ShardInfo>, max: usize) -> Result<usize> {
        buf.clear();
        while buf.len() < max {
            match self.read_one()? {
                Some(report) => buf.push(report),
                None => break,
            }
        }
        Ok(buf.len())
    }

    fn cursor(&self) -> u64 {
        self.produced
    }

    fn fast_forward(&mut self, cursor: u64) -> Result<()> {
        if cursor < self.produced {
            return Err(DaemonError::ingest(format!(
                "cannot rewind a JSONL source from {} to {cursor}",
                self.produced
            )));
        }
        while self.produced < cursor {
            if self.read_one()?.is_none() {
                return Err(DaemonError::ingest(format!(
                    "feed ended at report {} while fast-forwarding to {cursor}; \
                     replay the same feed to recover",
                    self.produced
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(source: &mut dyn IngestSource, n: usize) -> Vec<ShardInfo> {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while out.len() < n {
            let got = source.next_batch(&mut buf, (n - out.len()).min(7)).unwrap();
            if got == 0 {
                break;
            }
            out.extend(buf.iter().cloned());
        }
        out
    }

    #[test]
    fn seeded_source_is_deterministic_and_cycles_the_population() {
        let a = drain(&mut SeededSource::new(9, 16).unwrap(), 64);
        let b = drain(&mut SeededSource::new(9, 16).unwrap(), 64);
        let c = drain(&mut SeededSource::new(10, 16).unwrap(), 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for (i, shard) in a.iter().enumerate() {
            assert_eq!(shard.committee().0, (i % 16) as u32);
            assert!(shard.tx_count() >= 1);
            assert!(shard.two_phase_latency().as_secs() > 0.0);
        }
    }

    #[test]
    fn seeded_fast_forward_matches_straight_consumption() {
        let mut straight = SeededSource::new(5, 12).unwrap();
        let all = drain(&mut straight, 100);
        let mut jumped = SeededSource::new(5, 12).unwrap();
        jumped.fast_forward(60).unwrap();
        assert_eq!(jumped.cursor(), 60);
        let tail = drain(&mut jumped, 40);
        assert_eq!(tail, all[60..]);
        // Rewinding is refused.
        assert!(jumped.fast_forward(10).is_err());
    }

    #[test]
    fn seeded_source_rejects_an_empty_population() {
        assert!(SeededSource::new(1, 0).is_err());
    }

    #[test]
    fn jsonl_source_parses_skips_blanks_and_ends_at_eof() {
        let feed = "{\"committee\":3,\"txs\":120,\"latency_s\":800.5}\n\
                    \n\
                    {\"committee\":4,\"txs\":90,\"latency_s\":700.0}\n";
        let mut source = JsonlSource::new(feed.as_bytes());
        let mut buf = Vec::new();
        assert_eq!(source.next_batch(&mut buf, 10).unwrap(), 2);
        assert_eq!(buf[0].committee(), CommitteeId(3));
        assert_eq!(buf[0].tx_count(), 120);
        assert_eq!(buf[1].two_phase_latency().as_secs(), 700.0);
        assert_eq!(source.cursor(), 2);
        assert_eq!(source.next_batch(&mut buf, 10).unwrap(), 0);
    }

    #[test]
    fn jsonl_source_rejects_malformed_lines() {
        let mut garbage = JsonlSource::new("not json\n".as_bytes());
        let mut buf = Vec::new();
        assert!(garbage.next_batch(&mut buf, 1).is_err());
        let mut bad_latency =
            JsonlSource::new("{\"committee\":1,\"txs\":5,\"latency_s\":-1.0}\n".as_bytes());
        assert!(bad_latency.next_batch(&mut buf, 1).is_err());
    }

    #[test]
    fn jsonl_fast_forward_skips_and_detects_short_feeds() {
        let feed = "{\"committee\":0,\"txs\":10,\"latency_s\":1.0}\n\
                    {\"committee\":1,\"txs\":20,\"latency_s\":2.0}\n\
                    {\"committee\":2,\"txs\":30,\"latency_s\":3.0}\n";
        let mut source = JsonlSource::new(feed.as_bytes());
        source.fast_forward(2).unwrap();
        let mut buf = Vec::new();
        assert_eq!(source.next_batch(&mut buf, 10).unwrap(), 1);
        assert_eq!(buf[0].committee(), CommitteeId(2));
        let mut short = JsonlSource::new(feed.as_bytes());
        assert!(short.fast_forward(9).is_err());
    }
}
