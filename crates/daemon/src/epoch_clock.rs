//! The daemon's logical clock: epochs measured in ingested batches.
//!
//! The daemon never reads the wall clock (the workspace D1 lint bans it
//! outside `crates/bench`); instead, time advances exactly when data
//! does. Each ingest batch ticks the clock forward by a configured
//! logical interval, and an epoch closes once it has absorbed a fixed
//! number of reports. The state machine per epoch is
//!
//! ```text
//! Open ──note_batch()──▶ Open ──…──▶ Full ──close_epoch()──▶ Open (next)
//! ```
//!
//! Because the clock is a pure function of the ingest history, a restart
//! that replays the same reports rebuilds the identical timeline — the
//! property the byte-identical crash-recovery guarantee rests on. The
//! clock is `Serialize`/`Deserialize` and rides inside every
//! [`DaemonCheckpoint`](crate::history::DaemonCheckpoint).

use serde::{Deserialize, Serialize};

use crate::error::{DaemonError, Result};

/// Batch-driven logical clock and epoch counter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochClock {
    epoch: u64,
    batches: u64,
    in_epoch: u64,
    reports_per_epoch: u64,
    batch_interval_s: f64,
}

impl EpochClock {
    /// A clock at epoch 0, time 0.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] when `reports_per_epoch` is zero or the
    /// interval is not a positive finite number.
    pub fn new(reports_per_epoch: u64, batch_interval_s: f64) -> Result<EpochClock> {
        if reports_per_epoch == 0 {
            return Err(DaemonError::config(
                "epoch-reports",
                "an epoch must hold at least one report",
            ));
        }
        if !batch_interval_s.is_finite() || batch_interval_s <= 0.0 {
            return Err(DaemonError::config(
                "batch-interval",
                format!("must be positive and finite, got {batch_interval_s}"),
            ));
        }
        Ok(EpochClock {
            epoch: 0,
            batches: 0,
            in_epoch: 0,
            reports_per_epoch,
            batch_interval_s,
        })
    }

    /// The current logical time: `batches · batch_interval_s` seconds.
    pub fn now(&self) -> f64 {
        self.batches as f64 * self.batch_interval_s
    }

    /// The currently open epoch's index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches ingested over the daemon's lifetime.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Reports still needed to fill the open epoch.
    pub fn remaining(&self) -> u64 {
        self.reports_per_epoch.saturating_sub(self.in_epoch)
    }

    /// Reports that fill one epoch.
    pub fn reports_per_epoch(&self) -> u64 {
        self.reports_per_epoch
    }

    /// Ticks the clock: one batch of `reports` ingested.
    pub fn note_batch(&mut self, reports: u64) {
        self.batches += 1;
        self.in_epoch += reports;
    }

    /// `true` once the open epoch has absorbed its full report quota.
    pub fn is_full(&self) -> bool {
        self.in_epoch >= self.reports_per_epoch
    }

    /// Closes the full epoch, returning its index; the next epoch opens
    /// empty at the current logical time.
    pub fn close_epoch(&mut self) -> u64 {
        let closed = self.epoch;
        self.epoch += 1;
        self.in_epoch = 0;
        closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_shapes() {
        assert!(EpochClock::new(0, 1.0).is_err());
        assert!(EpochClock::new(8, 0.0).is_err());
        assert!(EpochClock::new(8, f64::NAN).is_err());
        assert!(EpochClock::new(8, -1.0).is_err());
    }

    #[test]
    fn time_is_batches_times_interval() {
        let mut c = EpochClock::new(8, 0.5).unwrap();
        assert_eq!(c.now(), 0.0);
        c.note_batch(4);
        c.note_batch(4);
        assert_eq!(c.now(), 1.0);
        assert_eq!(c.batches(), 2);
    }

    #[test]
    fn epoch_lifecycle_open_full_close() {
        let mut c = EpochClock::new(8, 1.0).unwrap();
        assert!(!c.is_full());
        assert_eq!(c.remaining(), 8);
        c.note_batch(5);
        assert!(!c.is_full());
        assert_eq!(c.remaining(), 3);
        c.note_batch(3);
        assert!(c.is_full());
        assert_eq!(c.close_epoch(), 0);
        assert_eq!(c.epoch(), 1);
        assert!(!c.is_full());
        assert_eq!(c.remaining(), 8);
        // The clock does not rewind across the epoch boundary.
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let mut c = EpochClock::new(32, 0.25).unwrap();
        c.note_batch(8);
        c.note_batch(8);
        let json = serde_json::to_string(&c).unwrap();
        let back: EpochClock = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
