//! Doc-sync: OPERATIONS.md must document every operator-facing surface
//! of the daemon — each CLI flag, each history record kind, and each
//! alert kind. The assertions look for the backticked literal, same as
//! the OBSERVABILITY.md kind-coverage test.

use mvcom_daemon::{AlertKind, DAEMON_FLAGS, RECORD_KINDS};

const OPERATIONS: &str = include_str!("../../../OPERATIONS.md");

#[test]
fn every_cli_flag_is_documented() {
    for spec in DAEMON_FLAGS {
        assert!(
            OPERATIONS.contains(&format!("`{}`", spec.flag)),
            "flag {} of `mvcom daemon` is not documented in OPERATIONS.md",
            spec.flag
        );
    }
}

#[test]
fn every_history_record_kind_is_documented() {
    for kind in RECORD_KINDS {
        assert!(
            OPERATIONS.contains(&format!("`{kind}`")),
            "history record kind `{kind}` is not documented in OPERATIONS.md"
        );
    }
}

#[test]
fn every_alert_kind_is_documented() {
    for kind in AlertKind::ALL {
        assert!(
            OPERATIONS.contains(&format!("`{}`", kind.name())),
            "alert kind `{}` is not documented in OPERATIONS.md",
            kind.name()
        );
    }
}
