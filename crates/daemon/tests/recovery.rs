//! Crash-recovery integration tests: kill the daemon at injected points
//! and prove the resumed history is byte-identical to an uninterrupted
//! run's.
//!
//! A `kill -9` can only ever leave a *prefix* of the history file on
//! disk (appends are single `write_all` calls), so the injected kill
//! points are byte-level truncations of a reference history:
//!
//! 1. at a record boundary (death between epochs),
//! 2. mid-frame inside an epoch record (death during the append),
//! 3. just past the header (death during the very first epoch).
//!
//! Each truncated file is resumed to the reference epoch count and the
//! bytes compared with `assert_eq!`. A *complete* frame whose payload was
//! corrupted is a different story — that is not a crash artifact, and
//! recovery must refuse it.

// Test code: unwrap is fine here (see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::{Path, PathBuf};

use mvcom_daemon::{
    read_history, AlertConfig, AlertEngine, Daemon, DaemonConfig, HistoryRecord, SeededSource,
    Startup,
};
use mvcom_obs::Obs;

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mvcom-daemon-recovery-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small, fast configuration exercising the full pipeline: uneven
/// batches, defense screening, and a misreporting adversary.
fn config() -> DaemonConfig {
    DaemonConfig {
        seed: 11,
        population: 24,
        batch_size: 5,
        reports_per_epoch: 12,
        batch_interval_s: 0.25,
        se_iterations: 150,
        defense: true,
        adv_fraction: 0.25,
        adv_strategy: "misreport".to_string(),
        ..DaemonConfig::default()
    }
}

/// Opens a daemon over the standard test config against `history`.
fn open(history: &Path, max_epochs: u64, resume: bool) -> Daemon {
    let cfg = DaemonConfig {
        max_epochs,
        ..config()
    };
    let source = SeededSource::new(cfg.seed, cfg.population).unwrap();
    Daemon::open(
        cfg,
        Box::new(source),
        history,
        resume,
        Obs::off(),
        AlertEngine::new(AlertConfig::default()),
    )
    .unwrap()
}

/// Runs an uninterrupted daemon for `epochs` epochs and returns the
/// history bytes.
fn reference_history(dir: &Path, epochs: u64) -> Vec<u8> {
    let path = dir.join("reference.log");
    let mut daemon = open(&path, epochs, false);
    assert_eq!(daemon.run(|_| {}).unwrap(), epochs);
    std::fs::read(&path).unwrap()
}

/// Truncates `reference` to `len` bytes at `path` (the kill), resumes a
/// daemon over it to `epochs` total, and asserts the resulting file is
/// byte-identical to the reference.
fn kill_resume_and_compare(dir: &Path, reference: &[u8], len: usize, epochs: u64, tag: &str) {
    let path = dir.join(format!("killed-{tag}.log"));
    std::fs::write(&path, &reference[..len]).unwrap();
    let mut daemon = open(&path, epochs, true);
    assert!(
        matches!(daemon.startup(), Startup::Resumed { .. }),
        "expected a resume, got {:?}",
        daemon.startup()
    );
    daemon.run(|_| {}).unwrap();
    drop(daemon);
    let resumed = std::fs::read(&path).unwrap();
    assert_eq!(
        resumed, reference,
        "resumed history diverged from the uninterrupted reference ({tag})"
    );
}

/// Byte offsets of every record boundary in a history file.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
        offsets.push(at);
    }
    assert_eq!(at, bytes.len(), "reference history has a torn tail");
    offsets
}

const EPOCHS: u64 = 5;

#[test]
fn kill_at_three_points_resumes_byte_identically() {
    let dir = scratch("killpoints");
    let reference = reference_history(&dir, EPOCHS);
    let boundaries = record_boundaries(&reference);
    // Header + EPOCHS epoch records.
    assert_eq!(boundaries.len() as u64, 1 + EPOCHS);

    // Kill point 1: a record boundary — death between epochs 3 and 4.
    kill_resume_and_compare(&dir, &reference, boundaries[3], EPOCHS, "boundary");
    // Kill point 2: mid-frame — death while appending epoch 2's record.
    // The torn frame must be dropped and the epoch re-run.
    let mid_frame = boundaries[2] + (boundaries[3] - boundaries[2]) / 2;
    kill_resume_and_compare(&dir, &reference, mid_frame, EPOCHS, "mid-frame");
    // Kill point 3: just past the header — death during the very first
    // epoch, before anything but the header hit the disk.
    kill_resume_and_compare(&dir, &reference, boundaries[0] + 3, EPOCHS, "early");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_kill_mid_epoch_resumes_byte_identically() {
    // The in-process flavour: a daemon that died after two epochs with a
    // third partially ingested persisted exactly two records — dropping
    // the `Daemon` mid-run models that (ingested-but-unclosed state lives
    // only in memory).
    let dir = scratch("live");
    let reference = reference_history(&dir, EPOCHS);
    let path = dir.join("killed-live.log");
    let mut first = open(&path, 2, false);
    assert_eq!(first.run(|_| {}).unwrap(), 2);
    drop(first); // the "kill": epoch 2's ingest state is lost with the process
    let mut resumed = open(&path, EPOCHS, true);
    assert!(matches!(
        resumed.startup(),
        Startup::Resumed {
            epochs: 2,
            dropped_bytes: 0,
            ..
        }
    ));
    assert_eq!(resumed.run(|_| {}).unwrap(), 3);
    drop(resumed);
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_tail_is_rejected_not_resumed() {
    // Flip one payload byte of the last record, keeping the frame
    // complete. That is bit rot, not a crash: recovery must hard-error
    // (resuming would silently fork the run's history).
    let dir = scratch("corrupt");
    let reference = reference_history(&dir, 3);
    let mut corrupted = reference.clone();
    let last = *record_boundaries(&reference).last().unwrap();
    corrupted[last - 10] ^= 0x01;
    let path = dir.join("corrupt.log");
    std::fs::write(&path, &corrupted).unwrap();

    let err = read_history(&path).unwrap_err();
    assert!(
        err.to_string().contains("CRC mismatch"),
        "unexpected error: {err}"
    );
    // Daemon::open refuses the file the same way.
    let cfg = DaemonConfig {
        max_epochs: 3,
        ..config()
    };
    let source = SeededSource::new(cfg.seed, cfg.population).unwrap();
    let opened = Daemon::open(
        cfg,
        Box::new(source),
        &path,
        true,
        Obs::off(),
        AlertEngine::new(AlertConfig::default()),
    );
    assert!(opened.is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_mismatch_is_rejected() {
    // A history written under one configuration cannot be resumed under
    // another: the run would no longer be reproducible.
    let dir = scratch("header");
    let path = dir.join("seed11.log");
    let mut daemon = open(&path, 2, false);
    daemon.run(|_| {}).unwrap();
    drop(daemon);
    let cfg = DaemonConfig {
        seed: 12, // differs from the on-disk header
        max_epochs: 4,
        ..config()
    };
    let source = SeededSource::new(cfg.seed, cfg.population).unwrap();
    let opened = Daemon::open(
        cfg,
        Box::new(source),
        &path,
        true,
        Obs::off(),
        AlertEngine::new(AlertConfig::default()),
    );
    let err = opened.expect_err("mismatched header must be refused");
    assert!(
        err.to_string().contains("does not match"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn history_records_are_well_formed_and_summaries_match_callbacks() {
    // Cross-check the persisted records against what the run callback
    // observed, and sanity-check the checkpoint bookkeeping.
    let dir = scratch("wellformed");
    let path = dir.join("run.log");
    let mut daemon = open(&path, 4, false);
    let mut seen = Vec::new();
    daemon.run(|s| seen.push(s.clone())).unwrap();
    drop(daemon);

    let loaded = read_history(&path).unwrap();
    assert_eq!(loaded.dropped_bytes, 0);
    let mut epochs = 0u64;
    for record in &loaded.records {
        match record {
            HistoryRecord::Header(h) => assert_eq!(h.seed, 11),
            HistoryRecord::Epoch(e) => {
                assert_eq!(e.summary, seen[epochs as usize]);
                epochs += 1;
                assert_eq!(e.checkpoint.total_epochs, epochs);
                assert_eq!(e.checkpoint.cursor, epochs * 12);
                assert!(e.checkpoint.defense.is_some());
                assert!(e.checkpoint.se.is_some());
                assert!(e.summary.admitted >= e.summary.n_min);
                assert!(e.summary.admitted_txs <= e.summary.offered_txs);
            }
        }
    }
    assert_eq!(epochs, 4);
    let _ = std::fs::remove_dir_all(&dir);
}
