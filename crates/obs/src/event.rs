//! The event envelope and its deterministic JSONL encoding.
//!
//! Every event serializes to exactly one line of JSON with a fixed
//! envelope — `{"v":1,"seq":N,"t":T,"kind":"…", …fields}` — in a fixed
//! field order (envelope first, then payload fields in emission order).
//! The encoder is hand-rolled over `std::fmt` so the byte stream depends
//! only on the emitted values: same run, same bytes.

use std::fmt::Write as _;

use crate::schema::SCHEMA_VERSION;

/// A telemetry field value.
///
/// The set is deliberately flat (no nesting): every documented event kind
/// is a fixed bag of scalars, which keeps the schema checkable and the
/// JSONL grep-able.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, iterations, versions).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (utilities, latencies in seconds, suspicion levels). Encoded
    /// with Rust's shortest-round-trip formatting; non-finite values
    /// encode as JSON `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (names, labels, enum-like tags).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One telemetry event, before sequencing and encoding.
///
/// `t` is a *logical* timestamp fed by the emitting site (virtual seconds,
/// simulated seconds, or a round/iteration index — each event kind
/// documents its clock in OBSERVABILITY.md). Observability never reads the
/// wall clock, so a trace replays byte-identically for a fixed seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The event kind — one of the names registered in [`crate::schema`].
    pub kind: &'static str,
    /// Logical timestamp (unit documented per kind).
    pub t: f64,
    /// Payload fields, encoded in this order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Builds an event from a kind, a logical timestamp and a field slice.
    pub fn new(kind: &'static str, t: f64, fields: &[(&'static str, Value)]) -> Event {
        Event {
            kind,
            t,
            fields: fields.to_vec(),
        }
    }
}

/// Appends `value` as a JSON scalar.
fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(v) => write_str(out, v),
    }
}

/// Appends `v` using Rust's shortest-round-trip float formatting — the
/// same bits always print the same bytes. Non-finite floats have no JSON
/// representation and encode as `null`.
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a JSON string with the mandatory escapes.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes one event as its JSONL line (no trailing newline).
pub(crate) fn encode_line(seq: u64, event: &Event) -> String {
    let mut out = String::with_capacity(64 + event.fields.len() * 24);
    let _ = write!(out, "{{\"v\":{SCHEMA_VERSION},\"seq\":{seq},\"t\":");
    write_f64(&mut out, event.t);
    out.push_str(",\"kind\":");
    write_str(&mut out, event.kind);
    for (name, value) in &event.fields {
        out.push(',');
        write_str(&mut out, name);
        out.push(':');
        write_value(&mut out, value);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_first_and_fields_keep_order() {
        let ev = Event::new(
            "span_open",
            1.5,
            &[("id", Value::U64(3)), ("name", Value::from("formation"))],
        );
        assert_eq!(
            encode_line(7, &ev),
            r#"{"v":1,"seq":7,"t":1.5,"kind":"span_open","id":3,"name":"formation"}"#
        );
    }

    #[test]
    fn floats_round_trip_and_non_finite_becomes_null() {
        let ev = Event::new(
            "metric",
            f64::NAN,
            &[
                ("a", Value::F64(0.1 + 0.2)),
                ("b", Value::F64(f64::INFINITY)),
                ("c", Value::F64(-0.0)),
            ],
        );
        let line = encode_line(0, &ev);
        assert!(line.contains("\"t\":null"), "{line}");
        assert!(line.contains("\"a\":0.30000000000000004"), "{line}");
        assert!(line.contains("\"b\":null"), "{line}");
        assert!(line.contains("\"c\":-0"), "{line}");
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event::new("metric", 0.0, &[("name", Value::from("a\"b\\c\nd\u{1}"))]);
        let line = encode_line(0, &ev);
        assert!(line.contains(r#""name":"a\"b\\c\nd\u0001""#), "{line}");
    }

    #[test]
    fn value_conversions_cover_the_scalars() {
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
