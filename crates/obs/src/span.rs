//! Logical-clock spans: paired `span_open` / `span_close` events.

use crate::{Obs, Value};

/// A span opened by [`Obs::span`] or the [`span!`](crate::span!) macro.
///
/// The span carries the opening logical time; [`Span::close`] emits the
/// matching `span_close` with the duration in the *same* logical clock.
/// Dropping an open span without closing it emits nothing — a missing
/// `span_close` in a trace marks work that never finished (a crash or an
/// injected failure), which is itself signal.
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

#[derive(Debug)]
struct SpanState {
    obs: Obs,
    id: u64,
    name: &'static str,
    opened_at: f64,
}

impl Span {
    pub(crate) fn disabled() -> Span {
        Span { state: None }
    }

    pub(crate) fn open(obs: Obs, id: u64, name: &'static str, opened_at: f64) -> Span {
        Span {
            state: Some(SpanState {
                obs,
                id,
                name,
                opened_at,
            }),
        }
    }

    /// The span id, shared by its open and close events (0 when disabled).
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.id)
    }

    /// Closes the span at logical time `t`, emitting `span_close` with
    /// `dur = t - opened_at`.
    pub fn close(mut self, t: f64) {
        if let Some(s) = self.state.take() {
            s.obs.emit(
                "span_close",
                t,
                &[
                    ("id", Value::U64(s.id)),
                    ("name", Value::from(s.name)),
                    ("dur", Value::F64(t - s.opened_at)),
                ],
            );
        }
    }
}
