//! Event sinks: where encoded JSONL lines go.
//!
//! A sink is any `io::Write + Send`; the [`Obs`](crate::Obs) handle owns
//! it behind a mutex together with the sequence counter, so line order
//! and `seq` always agree. File sinks buffer through an 8 KiB
//! `BufWriter`; lines are durable after [`Obs::flush`](crate::Obs::flush)
//! or when the last `Obs` handle drops (buffered bytes flush on drop).

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// An in-memory sink readable while (and after) events are emitted —
/// the test and post-processing workhorse.
///
/// Cloning shares the underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> SharedBuffer {
        SharedBuffer::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        let bytes = self.bytes.lock().unwrap_or_else(|p| p.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// The JSONL lines written so far.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().map(|l| l.to_string()).collect()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Opens a buffered JSONL file sink, truncating any existing file.
///
/// # Errors
///
/// Propagates the underlying `File::create` error.
pub fn file_sink(path: &std::path::Path) -> io::Result<Box<dyn Write + Send>> {
    let file = std::fs::File::create(path)?;
    Ok(Box::new(io::BufWriter::new(file)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_buffer_accumulates_lines() {
        let buffer = SharedBuffer::new();
        let mut writer = buffer.clone();
        writer.write_all(b"a\nb\n").unwrap();
        assert_eq!(buffer.lines(), ["a", "b"]);
    }
}
