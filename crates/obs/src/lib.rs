//! **mvcom-obs** — deterministic observability for the MVCom pipeline.
//!
//! A zero-dependency telemetry subsystem shared by every workspace crate:
//!
//! * an [`Obs`] handle that filters, sequences and encodes [`Event`]s to a
//!   JSONL sink (file, in-memory buffer, or nothing);
//! * a lock-cheap [`MetricsRegistry`] — counters, gauges and fixed-bucket
//!   histograms keyed by static names;
//! * a span API ([`Obs::span`] / [`span!`]) whose timestamps come from the
//!   emitting site's *logical* clock (virtual time, simulated seconds, or
//!   a round index) — never the wall clock, so a trace replays
//!   byte-identically for a fixed seed (the workspace D1 lint rule);
//! * a versioned, documented event [`schema`] the sink validates every
//!   event against before encoding it.
//!
//! The full wire format is documented in `OBSERVABILITY.md` at the
//! workspace root; the architecture rationale is DESIGN.md §8.
//!
//! # Example: record a run and read it back
//!
//! ```
//! use mvcom_obs::{span, Obs, ObsLevel};
//!
//! // An in-memory sink (use `Obs::to_file` for a real events.jsonl).
//! let (obs, buffer) = Obs::memory(ObsLevel::Events);
//!
//! // A span over a pipeline stage, clocked in logical seconds.
//! let stage = span!(obs, 0.0, "formation", "epoch" => 3u64);
//! obs.incr("epoch.committees_formed");
//! stage.close(812.5);
//!
//! // Metrics flush as `metric` events; everything lands in the buffer.
//! obs.flush_metrics(812.5);
//! obs.flush();
//!
//! let lines = buffer.lines();
//! assert_eq!(lines.len(), 3, "{lines:#?}");
//! assert!(lines[0].contains(r#""kind":"span_open""#));
//! assert!(lines[1].contains(r#""kind":"span_close""#));
//! assert!(lines[2].contains(r#""kind":"metric""#));
//! // Every event validated against the schema on the way in.
//! assert_eq!(obs.invalid_dropped(), 0);
//! ```
//!
//! # Determinism
//!
//! Given the same emitted values in the same order, the byte stream is
//! identical: the encoder is hand-rolled (no serializer drift), floats
//! print shortest-round-trip, `seq` is assigned under the same lock that
//! orders the lines, and nothing here reads a clock or an RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod event;
pub mod metrics;
pub mod schema;
pub mod sink;
mod span;
mod summary;

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use event::{Event, Value};
pub use metrics::{Histogram, MetricsRegistry, SECONDS_BUCKETS};
pub use schema::{FieldSpec, FieldType, KindSpec, SchemaError, SCHEMA_VERSION};
pub use sink::SharedBuffer;
pub use span::Span;
pub use summary::Table;

/// Verbosity of an [`Obs`] handle. Each event kind declares the minimum
/// level at which it is emitted (see [`schema::KINDS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsLevel {
    /// Emit nothing (the default for a detached handle).
    #[default]
    Off,
    /// Epoch summaries and metric flushes only.
    Summary,
    /// Spans plus the per-stage event stream (the `--obs-out` default).
    Events,
    /// Everything, including per-proposal SE and per-phase PBFT events.
    Trace,
}

impl ObsLevel {
    /// Parses the CLI spelling (`off|summary|events|trace`).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "summary" => Some(ObsLevel::Summary),
            "events" => Some(ObsLevel::Events),
            "trace" => Some(ObsLevel::Trace),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Summary => "summary",
            ObsLevel::Events => "events",
            ObsLevel::Trace => "trace",
        }
    }
}

struct Sinked {
    seq: u64,
    dropped: u64,
    out: Box<dyn Write + Send>,
}

#[derive(Debug)]
struct ObsInner {
    level: ObsLevel,
    span_ids: AtomicU64,
    sink: Mutex<Sinked>,
    /// When set, emitted events are buffered here instead of being
    /// sequenced and written — see [`Obs::deferred`].
    capture: Option<CaptureBuffer>,
    /// Shared (`Arc`) so a deferred handle can update the *parent's*
    /// counters directly: counter additions commute, so fan-out workers
    /// reproduce the serial totals regardless of interleaving.
    metrics: Arc<MetricsRegistry>,
}

/// Events captured by a deferred handle (see [`Obs::deferred`]), in
/// emission order, before `seq` assignment and schema validation.
///
/// Cloning shares the buffer; [`CaptureBuffer::take`] drains it.
#[derive(Debug, Clone, Default)]
pub struct CaptureBuffer {
    events: Arc<Mutex<Vec<Event>>>,
}

impl CaptureBuffer {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn push(&self, event: Event) {
        self.lock().push(event);
    }

    /// Drains the captured events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.lock())
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl std::fmt::Debug for Sinked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sinked")
            .field("seq", &self.seq)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

/// The telemetry handle threaded through the pipeline.
///
/// Cloning is cheap (an `Arc`); all clones share the sink, the sequence
/// counter and the metrics registry. A handle built with [`Obs::off`]
/// (also the `Default`) skips all work — instrumented code can hold one
/// unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// A disabled handle: every operation is a no-op.
    pub fn off() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle writing JSONL lines to `out`.
    pub fn writer(level: ObsLevel, out: Box<dyn Write + Send>) -> Obs {
        if level == ObsLevel::Off {
            return Obs::off();
        }
        Obs {
            inner: Some(Arc::new(ObsInner {
                level,
                span_ids: AtomicU64::new(1),
                sink: Mutex::new(Sinked {
                    seq: 0,
                    dropped: 0,
                    out,
                }),
                capture: None,
                metrics: Arc::new(MetricsRegistry::new()),
            })),
        }
    }

    /// A deferred handle derived from `self`, for fan-out sections whose
    /// event lines must not interleave: events emitted on the returned
    /// handle are buffered (in emission order, unsequenced) in the
    /// returned [`CaptureBuffer`] instead of being written, while metric
    /// updates land directly in `self`'s shared registry (counter
    /// additions commute, so parallel workers reproduce serial totals).
    /// [`Obs::replay`]ing the buffer on `self` afterwards produces
    /// exactly the lines — and schema-drop counts — that emitting the
    /// same events on `self` directly would have: level filtering,
    /// validation and `seq` assignment all happen at replay time.
    ///
    /// Spans opened on a deferred handle draw ids from that handle's own
    /// counter, so fan-out sections needing byte-stable span ids must
    /// keep spans on the parent handle (the epoch runner's stage 3 emits
    /// plain events only).
    ///
    /// A disabled handle returns a disabled handle (its buffer stays
    /// empty, and replaying is a no-op).
    pub fn deferred(&self) -> (Obs, CaptureBuffer) {
        let buffer = CaptureBuffer::default();
        let Some(inner) = &self.inner else {
            return (Obs::off(), buffer);
        };
        let deferred = Obs {
            inner: Some(Arc::new(ObsInner {
                level: inner.level,
                span_ids: AtomicU64::new(1),
                sink: Mutex::new(Sinked {
                    seq: 0,
                    dropped: 0,
                    out: Box::new(std::io::sink()),
                }),
                capture: Some(buffer.clone()),
                metrics: Arc::clone(&inner.metrics),
            })),
        };
        (deferred, buffer)
    }

    /// Re-emits `events` on this handle in order — the second half of the
    /// [`Obs::deferred`] protocol.
    pub fn replay(&self, events: Vec<Event>) {
        for event in events {
            self.emit(event.kind, event.t, &event.fields);
        }
    }

    /// An enabled handle writing to a freshly created (truncated) file,
    /// buffered; see [`Obs::flush`].
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_file(level: ObsLevel, path: &std::path::Path) -> std::io::Result<Obs> {
        Ok(Obs::writer(level, sink::file_sink(path)?))
    }

    /// An enabled handle writing into a [`SharedBuffer`] the caller keeps.
    pub fn memory(level: ObsLevel) -> (Obs, SharedBuffer) {
        let buffer = SharedBuffer::new();
        (Obs::writer(level, Box::new(buffer.clone())), buffer)
    }

    /// `true` when events gated at `level` would be emitted — use to skip
    /// building expensive field sets.
    pub fn enabled(&self, level: ObsLevel) -> bool {
        self.inner.as_ref().is_some_and(|i| i.level >= level)
    }

    /// The handle's level ([`ObsLevel::Off`] for a disabled handle).
    pub fn level(&self) -> ObsLevel {
        self.inner.as_ref().map_or(ObsLevel::Off, |i| i.level)
    }

    /// Emits one event: filters by the kind's registered level, validates
    /// it against the [`schema`], assigns the next `seq` and writes the
    /// encoded line. Invalid events are counted (see
    /// [`Obs::invalid_dropped`]) and dropped rather than panicking.
    pub fn emit(&self, kind: &'static str, t: f64, fields: &[(&'static str, Value)]) {
        let Some(inner) = &self.inner else { return };
        if let Some(buffer) = &inner.capture {
            // Deferred mode: buffer anything that would reach the sink
            // *or* the dropped counter (unknown kinds, invalid payloads);
            // replay reproduces both. Level-filtered events are skipped
            // here exactly as the direct path skips them — silently.
            match schema::spec(kind) {
                Some(spec) if inner.level < spec.level => {}
                _ => buffer.push(Event::new(kind, t, fields)),
            }
            return;
        }
        let Some(spec) = schema::spec(kind) else {
            inner.lock_sink().dropped += 1;
            return;
        };
        if inner.level < spec.level {
            return;
        }
        let event = Event::new(kind, t, fields);
        if schema::validate(&event).is_err() {
            inner.lock_sink().dropped += 1;
            return;
        }
        let mut sink = inner.lock_sink();
        let seq = sink.seq;
        sink.seq += 1;
        let line = event::encode_line(seq, &event);
        let _ = sink.out.write_all(line.as_bytes());
        let _ = sink.out.write_all(b"\n");
    }

    /// Opens a span named `name` at logical time `t` with extra context
    /// `fields`; prefer the [`span!`] macro. The returned [`Span`] emits
    /// `span_close` when [`Span::close`]d.
    pub fn span(&self, name: &'static str, t: f64, fields: &[(&'static str, Value)]) -> Span {
        if !self.enabled(ObsLevel::Events) {
            return Span::disabled();
        }
        // lint: allow(P1, enabled() above guarantees inner is Some)
        let inner = self.inner.as_ref().expect("enabled handle has an inner");
        let id = inner.span_ids.fetch_add(1, Ordering::Relaxed);
        let mut all = Vec::with_capacity(fields.len() + 2);
        all.push(("id", Value::U64(id)));
        all.push(("name", Value::from(name)));
        all.extend_from_slice(fields);
        self.emit("span_open", t, &all);
        Span::open(self.clone(), id, name, t)
    }

    /// Events dropped because they failed schema validation (0 in a
    /// correct program; tests assert on this).
    pub fn invalid_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.lock_sink().dropped)
    }

    /// Lines written so far (equals the next `seq`).
    pub fn lines_written(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.lock_sink().seq)
    }

    /// Flushes the sink's buffer to its destination.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let _ = inner.lock_sink().out.flush();
        }
    }

    // ---- metrics ------------------------------------------------------

    /// Increments the counter `name` (no-op when disabled).
    pub fn incr(&self, name: &'static str) {
        if let Some(inner) = &self.inner {
            inner.metrics.incr(name);
        }
    }

    /// Adds `n` to the counter `name` (no-op when disabled).
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, n);
        }
    }

    /// Sets the gauge `name` (no-op when disabled).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Records `value` into the histogram `name` (no-op when disabled).
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// The shared registry, when the handle is enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| i.metrics.as_ref())
    }

    /// Emits the registry as `metric`/`metric_hist` events stamped `t`
    /// (deterministic sorted order), for an end-of-run snapshot.
    pub fn flush_metrics(&self, t: f64) {
        let Some(inner) = &self.inner else { return };
        if inner.level < ObsLevel::Summary {
            return;
        }
        for ev in inner.metrics.snapshot_events(t) {
            self.emit(ev.kind, ev.t, &ev.fields);
        }
    }

    /// The registry rendered as a human-readable table, or `None` when
    /// disabled or empty.
    pub fn metrics_table(&self) -> Option<String> {
        let table = self.inner.as_ref()?.metrics.render_table();
        if table.is_empty() {
            None
        } else {
            Some(table)
        }
    }
}

impl ObsInner {
    fn lock_sink(&self) -> std::sync::MutexGuard<'_, Sinked> {
        self.sink.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Builds the field slice and calls [`Obs::emit`]:
/// `obs_event!(obs, "se_point", t, "iter" => 10u64, "best" => 1.0)`.
#[macro_export]
macro_rules! obs_event {
    ($obs:expr, $kind:expr, $t:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $obs.emit($kind, $t, &[$(($k, $crate::Value::from($v))),*])
    };
}

/// Opens a span: `span!(obs, t, "formation", "epoch" => 3u64)`. Returns a
/// [`Span`]; call [`Span::close`] with the closing logical time.
#[macro_export]
macro_rules! span {
    ($obs:expr, $t:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $obs.span($name, $t, &[$(($k, $crate::Value::from($v))),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        obs.emit("se_point", 0.0, &[]);
        obs.incr("a.b");
        assert!(!obs.enabled(ObsLevel::Summary));
        assert_eq!(obs.lines_written(), 0);
        assert!(obs.metrics_table().is_none());
        let span = obs.span("x", 0.0, &[]);
        span.close(1.0);
    }

    #[test]
    fn level_filtering_follows_the_schema_registry() {
        let (obs, buffer) = Obs::memory(ObsLevel::Summary);
        // se_point is Events-level: filtered out at Summary.
        obs_event!(obs, "se_point", 0.0,
            "iter" => 0u64, "current_best" => 0.0, "best_so_far" => 0.0);
        // epoch_start is Summary-level: kept.
        obs_event!(obs, "epoch_start", 0.0, "epoch" => 0u64, "nodes" => 8u64);
        assert_eq!(buffer.lines().len(), 1);
        assert_eq!(obs.invalid_dropped(), 0);
    }

    #[test]
    fn invalid_events_are_dropped_and_counted() {
        let (obs, buffer) = Obs::memory(ObsLevel::Trace);
        obs.emit("se_point", 0.0, &[("iter", Value::U64(0))]); // missing fields
        obs.emit("no_such_kind", 0.0, &[]);
        assert!(buffer.lines().is_empty());
        assert_eq!(obs.invalid_dropped(), 2);
    }

    #[test]
    fn seq_is_dense_and_ordered() {
        let (obs, buffer) = Obs::memory(ObsLevel::Events);
        for i in 0..5u64 {
            obs_event!(obs, "se_improve", i as f64, "iter" => i, "utility" => 0.0);
        }
        for (i, line) in buffer.lines().iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i},")), "{line}");
        }
        assert_eq!(obs.lines_written(), 5);
    }

    #[test]
    fn spans_pair_open_and_close_with_duration() {
        let (obs, buffer) = Obs::memory(ObsLevel::Events);
        let outer = span!(obs, 1.0, "epoch", "epoch" => 7u64);
        let inner = span!(obs, 2.0, "formation");
        inner.close(5.0);
        outer.close(10.0);
        let lines = buffer.lines();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[2].contains(r#""name":"formation","dur":3"#),
            "{}",
            lines[2]
        );
        assert!(
            lines[3].contains(r#""name":"epoch","dur":9"#),
            "{}",
            lines[3]
        );
        // Ids are distinct and the close references its open.
        assert!(lines[0].contains(r#""id":1"#));
        assert!(lines[1].contains(r#""id":2"#));
        assert!(lines[2].contains(r#""id":2"#));
        assert!(lines[3].contains(r#""id":1"#));
    }

    #[test]
    fn clones_share_the_stream() {
        let (obs, buffer) = Obs::memory(ObsLevel::Events);
        let clone = obs.clone();
        obs_event!(obs, "se_improve", 0.0, "iter" => 0u64, "utility" => 1.0);
        obs_event!(clone, "se_improve", 1.0, "iter" => 1u64, "utility" => 2.0);
        assert_eq!(buffer.lines().len(), 2);
        clone.incr("a.count");
        assert_eq!(obs.metrics().map(|m| m.counter("a.count")), Some(1));
    }

    #[test]
    fn levels_parse_and_order() {
        assert!(ObsLevel::Trace > ObsLevel::Events);
        assert!(ObsLevel::Events > ObsLevel::Summary);
        assert!(ObsLevel::Summary > ObsLevel::Off);
        for level in [
            ObsLevel::Off,
            ObsLevel::Summary,
            ObsLevel::Events,
            ObsLevel::Trace,
        ] {
            assert_eq!(ObsLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(ObsLevel::parse("verbose"), None);
    }

    #[test]
    fn deferred_replay_is_byte_identical_to_direct_emission() {
        let emit_all = |obs: &Obs| {
            obs_event!(obs, "se_improve", 0.0, "iter" => 0u64, "utility" => 1.5);
            obs_event!(obs, "se_point", 1.0,
                "iter" => 1u64, "current_best" => 2.0, "best_so_far" => 2.0);
            obs.emit("no_such_kind", 2.0, &[]); // dropped either way
            obs.emit("se_improve", 3.0, &[("iter", Value::U64(3))]); // invalid
        };
        let (direct, direct_buf) = Obs::memory(ObsLevel::Events);
        obs_event!(direct, "epoch_start", 0.0, "epoch" => 0u64, "nodes" => 8u64);
        emit_all(&direct);

        let (parent, parent_buf) = Obs::memory(ObsLevel::Events);
        obs_event!(parent, "epoch_start", 0.0, "epoch" => 0u64, "nodes" => 8u64);
        let (child, capture) = parent.deferred();
        emit_all(&child);
        // Nothing reaches the parent sink until replay.
        assert_eq!(parent_buf.lines().len(), 1);
        parent.replay(capture.take());

        assert_eq!(parent_buf.contents(), direct_buf.contents());
        assert_eq!(parent.invalid_dropped(), direct.invalid_dropped());
        assert_eq!(parent.invalid_dropped(), 2);
        assert!(capture.is_empty(), "take drains the buffer");
    }

    #[test]
    fn deferred_level_filters_like_the_parent() {
        let (parent, buf) = Obs::memory(ObsLevel::Summary);
        let (child, capture) = parent.deferred();
        // se_point is Events-level: filtered on a Summary handle, so it
        // must not be captured either.
        obs_event!(child, "se_point", 0.0,
            "iter" => 0u64, "current_best" => 0.0, "best_so_far" => 0.0);
        obs_event!(child, "epoch_start", 0.0, "epoch" => 0u64, "nodes" => 8u64);
        assert_eq!(capture.len(), 1);
        parent.replay(capture.take());
        assert_eq!(buf.lines().len(), 1);
        assert!(buf.contents().contains("\"kind\":\"epoch_start\""));
    }

    #[test]
    fn deferred_metrics_land_in_the_parent_registry() {
        let (parent, _buf) = Obs::memory(ObsLevel::Events);
        let (child, _capture) = parent.deferred();
        child.incr("pbft.committed");
        child.add("pbft.committed", 2);
        child.observe("pbft.latency_s", 1.0);
        assert_eq!(
            parent.metrics().map(|m| m.counter("pbft.committed")),
            Some(3)
        );
        assert_eq!(
            parent
                .metrics()
                .and_then(|m| m.histogram("pbft.latency_s"))
                .map(|h| h.count()),
            Some(1)
        );
    }

    #[test]
    fn deferred_on_a_disabled_handle_is_inert() {
        let (child, capture) = Obs::off().deferred();
        obs_event!(child, "epoch_start", 0.0, "epoch" => 0u64, "nodes" => 8u64);
        assert!(capture.is_empty());
        Obs::off().replay(capture.take());
    }

    #[test]
    fn writer_at_off_collapses_to_disabled() {
        let buffer = SharedBuffer::new();
        let obs = Obs::writer(ObsLevel::Off, Box::new(buffer.clone()));
        obs_event!(obs, "epoch_start", 0.0, "epoch" => 0u64, "nodes" => 8u64);
        assert!(buffer.lines().is_empty());
    }
}
