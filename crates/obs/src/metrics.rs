//! A lock-cheap metrics registry: counters, gauges and fixed-bucket
//! histograms keyed by `&'static str` names.
//!
//! Naming convention (checked by a test here and documented in
//! OBSERVABILITY.md): `area.noun` or `area.noun_unit`, all lowercase,
//! e.g. `se.resets_broadcast`, `epoch.final_latency_s`, `chaos.dropped`.
//!
//! The registry is shared behind the [`Obs`](crate::Obs) handle; updates
//! take one uncontended `Mutex` acquisition and a `BTreeMap` probe — cheap
//! enough for per-event hot paths, and the `BTreeMap` keeps snapshot and
//! flush order deterministic (the D1 rule bans iteration-order-unstable
//! containers in deterministic crates).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::event::{Event, Value};

/// Default histogram buckets for second-valued latencies: powers of two
/// from 1/16 s up to 4096 s.
pub const SECONDS_BUCKETS: &[f64] = &[
    0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0,
];

/// A fixed-bucket histogram: `counts[i]` counts observations `<= bounds[i]`
/// (non-cumulative per bucket; the final slot is the overflow bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The upper bound of the bucket containing the q-quantile (q in
    /// `[0, 1]`), or `None` when empty. The overflow bucket reports the
    /// largest finite bound.
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.bounds.last().copied().unwrap_or(f64::INFINITY)
                });
            }
        }
        self.bounds.last().copied()
    }

    /// `le<bound>:<cumulative count>` pairs, comma-separated — the wire
    /// encoding of the `buckets` field of a `metric_hist` event.
    pub fn encode_buckets(&self) -> String {
        let mut out = String::new();
        let mut cumulative = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if idx > 0 {
                out.push(',');
            }
            if idx < self.bounds.len() {
                out.push_str(&format!("le{}:{cumulative}", self.bounds[idx]));
            } else {
                out.push_str(&format!("leinf:{cumulative}"));
            }
        }
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// The registry. See the [module docs](self) for the naming convention.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking holder cannot corrupt plain counters; recover the
        // data rather than propagating the poison.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Adds `n` to the counter `name` (registering it at 0 first).
    pub fn add(&self, name: &'static str, n: u64) {
        *self.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        self.lock().gauges.insert(name, value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Registers the histogram `name` with explicit bucket bounds
    /// (idempotent; existing observations are kept).
    pub fn register_histogram(&self, name: &'static str, bounds: &[f64]) {
        self.lock()
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records an observation into the histogram `name`, registering it
    /// with [`SECONDS_BUCKETS`] on first use.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.lock()
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(SECONDS_BUCKETS))
            .observe(value);
    }

    /// A copy of the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Turns the registry into `metric` / `metric_hist` events timestamped
    /// `t`, in deterministic (sorted-name) order. Used by
    /// [`Obs::flush_metrics`](crate::Obs::flush_metrics).
    pub(crate) fn snapshot_events(&self, t: f64) -> Vec<Event> {
        let inner = self.lock();
        let mut events = Vec::new();
        for (name, value) in &inner.counters {
            events.push(Event::new(
                "metric",
                t,
                &[
                    ("name", Value::from(*name)),
                    ("metric", Value::from("counter")),
                    ("value", Value::F64(*value as f64)),
                ],
            ));
        }
        for (name, value) in &inner.gauges {
            events.push(Event::new(
                "metric",
                t,
                &[
                    ("name", Value::from(*name)),
                    ("metric", Value::from("gauge")),
                    ("value", Value::F64(*value)),
                ],
            ));
        }
        for (name, hist) in &inner.histograms {
            events.push(Event::new(
                "metric_hist",
                t,
                &[
                    ("name", Value::from(*name)),
                    ("count", Value::U64(hist.count)),
                    ("sum", Value::F64(hist.sum)),
                    ("buckets", Value::from(hist.encode_buckets())),
                ],
            ));
        }
        events
    }

    /// Renders the registry as one deterministic JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,"sum":…,"buckets":"…"}}}`,
    /// names sorted within each section. This is the document the
    /// `mvcom-daemon` metrics endpoint serves.
    pub fn snapshot_json(&self) -> String {
        use crate::event::{write_f64, write_str};
        let inner = self.lock();
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (idx, (name, value)) in inner.counters.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (idx, (name, value)) in inner.gauges.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            out.push(':');
            write_f64(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        for (idx, (name, hist)) in inner.histograms.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(":{{\"count\":{},\"sum\":", hist.count),
            );
            write_f64(&mut out, hist.sum);
            out.push_str(",\"buckets\":");
            write_str(&mut out, &hist.encode_buckets());
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Renders the registry as an aligned, human-readable table (sorted by
    /// name; histograms report count/mean/p50/p95 bucket bounds).
    pub fn render_table(&self) -> String {
        let inner = self.lock();
        let mut rows: Vec<(String, String)> = Vec::new();
        for (name, value) in &inner.counters {
            rows.push(((*name).to_string(), value.to_string()));
        }
        for (name, value) in &inner.gauges {
            rows.push(((*name).to_string(), format!("{value:.3}")));
        }
        for (name, hist) in &inner.histograms {
            let mean = if hist.count > 0 {
                hist.sum / hist.count as f64
            } else {
                0.0
            };
            rows.push((
                (*name).to_string(),
                format!(
                    "n={} mean={:.2} p50<={} p95<={}",
                    hist.count,
                    mean,
                    hist.quantile_bound(0.5).unwrap_or(0.0),
                    hist.quantile_bound(0.95).unwrap_or(0.0),
                ),
            ));
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in rows {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let m = MetricsRegistry::new();
        m.incr("se.resets_broadcast");
        m.add("se.resets_broadcast", 4);
        assert_eq!(m.counter("se.resets_broadcast"), 5);
        assert_eq!(m.counter("never.touched"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("se.best_utility", -10.0);
        m.set_gauge("se.best_utility", -4.0);
        assert_eq!(m.gauge("se.best_utility"), Some(-4.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let m = MetricsRegistry::new();
        m.register_histogram("epoch.final_latency_s", &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 500.0] {
            m.observe("epoch.final_latency_s", v);
        }
        let h = m.histogram("epoch.final_latency_s").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.encode_buckets(), "le1:2,le10:3,le100:4,leinf:5");
        assert_eq!(h.quantile_bound(0.5), Some(10.0));
        assert_eq!(h.quantile_bound(1.0), Some(100.0));
    }

    #[test]
    fn snapshot_events_validate_and_sort_deterministically() {
        let m = MetricsRegistry::new();
        m.incr("b.count");
        m.incr("a.count");
        m.set_gauge("c.level", 1.5);
        m.observe("d.latency_s", 3.0);
        let events = m.snapshot_events(9.0);
        let names: Vec<String> = events
            .iter()
            .map(|e| match &e.fields[0].1 {
                crate::event::Value::Str(s) => s.clone(),
                other => panic!("first field must be the name, got {other:?}"),
            })
            .collect();
        assert_eq!(names, ["a.count", "b.count", "c.level", "d.latency_s"]);
        for ev in &events {
            assert_eq!(crate::schema::validate(ev), Ok(()), "{:?}", ev.kind);
        }
    }

    #[test]
    fn table_renders_every_metric() {
        let m = MetricsRegistry::new();
        m.incr("a.count");
        m.observe("b.latency_s", 2.0);
        let table = m.render_table();
        assert!(table.contains("a.count"), "{table}");
        assert!(table.contains("n=1"), "{table}");
    }
}
