//! Aligned plain-text tables for per-epoch human-readable summaries.

/// A small column-aligned table builder used by the CLI's `--obs-level
/// summary` output (and by [`MetricsRegistry::render_table`]-style
/// reports).
///
/// [`MetricsRegistry::render_table`]: crate::MetricsRegistry::render_table
///
/// ```
/// let mut table = mvcom_obs::Table::new(&["epoch", "util", "resets"]);
/// table.row(&["0".into(), "-41.2".into(), "3".into()]);
/// table.row(&["1".into(), "-39.8".into(), "0".into()]);
/// let text = table.render();
/// assert!(text.starts_with("  epoch  util   resets\n"), "{text}");
/// ```
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with two-space indentation and column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (idx, cell) in row.iter().enumerate() {
                if cell.len() > widths[idx] {
                    widths[idx] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            out.push_str("  ");
            for (idx, cell) in cells.iter().enumerate() {
                if idx > 0 {
                    out.push_str("  ");
                }
                if idx + 1 == cells.len() {
                    out.push_str(cell);
                } else {
                    out.push_str(&format!("{cell:width$}", width = widths[idx]));
                }
            }
            out.push('\n');
        };
        push_row(&self.headers, &mut out);
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_to_widest_cell() {
        let mut t = Table::new(&["name", "n"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "23".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("  name"));
        assert!(lines[2].starts_with("  longer-name  23"), "{text}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
