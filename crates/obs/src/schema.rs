//! The versioned event schema: every kind, field, unit and emitting site.
//!
//! This table is the single source of truth for the JSONL wire format.
//! OBSERVABILITY.md is generated *from prose against this table* — a test
//! in this module checks that every registered kind is documented there,
//! so the doc and the code cannot drift silently.
//!
//! Every event line carries the envelope `v` (schema version), `seq`
//! (monotone per sink), `t` (logical timestamp; the unit is per-kind) and
//! `kind`; the payload fields are listed here. [`validate`] checks an
//! event against its [`KindSpec`] — unknown kinds, missing required
//! fields, type mismatches and (for closed kinds) undeclared fields are
//! all errors. The sink validates every event before encoding it, so a
//! file produced by this crate conforms to this schema by construction.

use crate::event::{Event, Value};
use crate::ObsLevel;

/// Version stamp written as `"v"` on every event line. Bump on any
/// incompatible change to the envelope or a registered kind.
pub const SCHEMA_VERSION: u32 = 1;

/// Wire type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// JSON number, unsigned integer range.
    U64,
    /// JSON number, signed integer range.
    I64,
    /// JSON number (or `null` for a non-finite float).
    F64,
    /// JSON string.
    Str,
    /// JSON `true`/`false`.
    Bool,
}

impl FieldType {
    fn matches(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (FieldType::U64, Value::U64(_))
                | (FieldType::I64, Value::I64(_))
                | (FieldType::F64, Value::F64(_))
                | (FieldType::Str, Value::Str(_))
                | (FieldType::Bool, Value::Bool(_))
        )
    }
}

/// One documented field of an event kind.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Field name on the wire.
    pub name: &'static str,
    /// Wire type.
    pub ty: FieldType,
    /// `false` for fields that may be omitted.
    pub required: bool,
    /// Unit or domain, for the schema document ("s", "iterations", …).
    pub unit: &'static str,
}

const fn req(name: &'static str, ty: FieldType, unit: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        ty,
        required: true,
        unit,
    }
}

const fn opt(name: &'static str, ty: FieldType, unit: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        ty,
        required: false,
        unit,
    }
}

/// One documented event kind.
#[derive(Debug, Clone, Copy)]
pub struct KindSpec {
    /// The `kind` value on the wire.
    pub kind: &'static str,
    /// Minimum [`ObsLevel`] at which the kind is emitted.
    pub level: ObsLevel,
    /// The clock feeding `t` for this kind.
    pub clock: &'static str,
    /// Where the event is emitted from (crate::module).
    pub site: &'static str,
    /// Payload fields.
    pub fields: &'static [FieldSpec],
    /// When `true` the kind may carry extra context fields beyond
    /// `fields` (only the span kinds are open; everything else is closed).
    pub open: bool,
}

use FieldType::{Bool, Str, F64, U64};

/// Every event kind of schema v1, in documentation order.
pub const KINDS: &[KindSpec] = &[
    // ---- run envelope -------------------------------------------------
    KindSpec {
        kind: "run_info",
        level: ObsLevel::Summary,
        clock: "constant 0",
        site: "src/bin/mvcom.rs",
        fields: &[
            req("tool", Str, "emitting binary/subcommand"),
            req("schema", U64, "schema version"),
            req("seed", U64, "master seed"),
            req("level", Str, "off|summary|events|trace"),
        ],
        open: false,
    },
    // ---- spans --------------------------------------------------------
    KindSpec {
        kind: "span_open",
        level: ObsLevel::Events,
        clock: "emitting site's logical clock",
        site: "any (span! macro)",
        fields: &[
            req("id", U64, "span id, unique per sink"),
            req("name", Str, "span name"),
        ],
        open: true,
    },
    KindSpec {
        kind: "span_close",
        level: ObsLevel::Events,
        clock: "emitting site's logical clock",
        site: "any (span! macro)",
        fields: &[
            req("id", U64, "span id of the matching span_open"),
            req("name", Str, "span name"),
            req("dur", F64, "t_close − t_open, logical seconds"),
        ],
        open: false,
    },
    // ---- SE engine (clock: virtual seconds, `vtime`) ------------------
    KindSpec {
        kind: "se_init",
        level: ObsLevel::Events,
        clock: "virtual seconds",
        site: "mvcom-core::se::engine",
        fields: &[
            req("iter", U64, "iterations executed so far"),
            req("gamma", U64, "replica count"),
            req("chains", U64, "total chains across replicas"),
            req("card_lo", U64, "lowest chain cardinality"),
            req("card_hi", U64, "highest chain cardinality"),
            req("instance_len", U64, "|I|, shards in the instance"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_point",
        level: ObsLevel::Events,
        clock: "virtual seconds",
        site: "mvcom-core::se::engine",
        fields: &[
            req("iter", U64, "iteration"),
            req(
                "current_best",
                F64,
                "best utility among current chain states",
            ),
            req("best_so_far", F64, "best feasible utility since run start"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_chain_point",
        level: ObsLevel::Events,
        clock: "virtual seconds (engine) / round (lockstep)",
        site: "mvcom-core::se::{engine,parallel}",
        fields: &[
            req("replica", U64, "replica index g"),
            req("chain", U64, "chain index within the replica"),
            req("card", U64, "chain cardinality n"),
            req("iter", U64, "iteration/round"),
            req("utility", F64, "U_{f_n} of the chain's current solution"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_propose",
        level: ObsLevel::Trace,
        clock: "virtual seconds (engine) / round (lockstep)",
        site: "mvcom-core::se::{engine,parallel}",
        fields: &[
            req("replica", U64, "replica index"),
            req("chain", U64, "chain index"),
            req("iter", U64, "iteration/round"),
            req("out", U64, "shard index leaving the solution (ĩ)"),
            req("inc", U64, "shard index entering the solution (ï)"),
            req("delta", F64, "utility change U_f' − U_f"),
            req("ln_timer", F64, "ln of the winning exponential timer"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_commit",
        level: ObsLevel::Trace,
        clock: "virtual seconds (engine) / round (lockstep)",
        site: "mvcom-core::se::{engine,parallel}",
        fields: &[
            req("replica", U64, "replica index"),
            req("chain", U64, "chain index"),
            req("iter", U64, "iteration/round"),
            req("utility", F64, "chain utility after the committed swap"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_improve",
        level: ObsLevel::Events,
        clock: "virtual seconds (engine) / round (lockstep)",
        site: "mvcom-core::se::{engine,parallel}",
        fields: &[
            req("iter", U64, "iteration/round of the improvement"),
            req("utility", F64, "new best-so-far utility"),
            opt("replica", U64, "publishing replica (lockstep only)"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_converged",
        level: ObsLevel::Events,
        clock: "virtual seconds (engine) / round (lockstep)",
        site: "mvcom-core::se::{engine,parallel}",
        fields: &[
            req("iter", U64, "iteration/round at convergence"),
            req("best", F64, "best feasible utility at convergence"),
            req("converged", Bool, "false when the iteration budget ran out"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_dynamic",
        level: ObsLevel::Events,
        clock: "virtual seconds",
        site: "mvcom-core::se::engine",
        fields: &[
            req("iter", U64, "iteration of the dynamic event"),
            req("event", Str, "join|leave"),
            req("committee", U64, "committee id"),
            req("utility_before", F64, "current best before the event"),
            req("utility_after", F64, "current best after re-seeding"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_checkpoint_save",
        level: ObsLevel::Events,
        clock: "virtual seconds",
        site: "mvcom-core::se::engine",
        fields: &[
            req("version", U64, "checkpoint version stamp"),
            req("iter", U64, "iteration the snapshot was taken at"),
            req("chains", U64, "chains recorded in the snapshot"),
        ],
        open: false,
    },
    KindSpec {
        kind: "se_checkpoint_restore",
        level: ObsLevel::Events,
        clock: "virtual seconds",
        site: "mvcom-core::se::engine",
        fields: &[
            req("version", U64, "checkpoint version stamp"),
            req("iter", U64, "iteration resumed from"),
            req("chains", U64, "chains rebuilt from the snapshot"),
        ],
        open: false,
    },
    // ---- RESET bus (clock: lockstep round index) ----------------------
    KindSpec {
        kind: "reset_publish",
        level: ObsLevel::Events,
        clock: "round",
        site: "mvcom-core::se::parallel (lockstep)",
        fields: &[
            req("version", U64, "bus version after the broadcast"),
            req("replica", U64, "broadcasting replica"),
            req("iter", U64, "round"),
        ],
        open: false,
    },
    KindSpec {
        kind: "reset_apply",
        level: ObsLevel::Events,
        clock: "round",
        site: "mvcom-core::se::parallel (lockstep)",
        fields: &[
            req("version", U64, "bus version adopted"),
            req("replica", U64, "applying replica"),
            req("iter", U64, "round"),
        ],
        open: false,
    },
    KindSpec {
        kind: "reset_stale",
        level: ObsLevel::Events,
        clock: "round",
        site: "mvcom-core::se::parallel (lockstep)",
        fields: &[
            req(
                "version",
                U64,
                "superseded version the signal was stamped against",
            ),
            req("replica", U64, "replica whose broadcast lost the race"),
            req("iter", U64, "round"),
        ],
        open: false,
    },
    // ---- Elastico epoch (clock: simulated seconds) --------------------
    KindSpec {
        kind: "epoch_start",
        level: ObsLevel::Summary,
        clock: "simulated seconds (epoch-relative)",
        site: "mvcom-elastico::epoch",
        fields: &[
            req("epoch", U64, "epoch id"),
            req("nodes", U64, "nodes running PoW"),
        ],
        open: false,
    },
    KindSpec {
        kind: "pow_done",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-elastico::epoch",
        fields: &[
            req("epoch", U64, "epoch id"),
            req("solutions", U64, "PoW solutions found"),
        ],
        open: false,
    },
    KindSpec {
        kind: "formation_done",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-elastico::epoch",
        fields: &[
            req("epoch", U64, "epoch id"),
            req("committees", U64, "committees at/above the minimum size"),
            req("directory", Bool, "message-level directory protocol used"),
        ],
        open: false,
    },
    KindSpec {
        kind: "committee_consensus",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-elastico::epoch",
        fields: &[
            req("epoch", U64, "epoch id"),
            req("committee", U64, "committee id"),
            req("committed", Bool, "intra-committee PBFT committed"),
            req("latency", F64, "consensus latency, s"),
            req("txs", U64, "shard transaction count"),
        ],
        open: false,
    },
    KindSpec {
        kind: "final_block",
        level: ObsLevel::Summary,
        clock: "simulated seconds",
        site: "mvcom-elastico::epoch",
        fields: &[
            req("epoch", U64, "epoch id"),
            req("committed", Bool, "final PBFT committed"),
            req("included", U64, "admitted committees"),
            req("total_txs", U64, "transactions in the final block"),
            req("latency", F64, "final consensus latency, s"),
        ],
        open: false,
    },
    KindSpec {
        kind: "epoch_end",
        level: ObsLevel::Summary,
        clock: "simulated seconds",
        site: "mvcom-elastico::epoch",
        fields: &[
            req("epoch", U64, "epoch id"),
            req("shards", U64, "shards that survived stage 3"),
            req("admitted", U64, "shards admitted to the final block"),
            req("committed", Bool, "final block committed"),
        ],
        open: false,
    },
    // ---- PBFT (clock: simulated seconds) ------------------------------
    KindSpec {
        kind: "pbft_phase",
        level: ObsLevel::Trace,
        clock: "simulated seconds",
        site: "mvcom-pbft::runner",
        fields: &[
            req("label", Str, "consensus instance label"),
            req("view", U64, "view number"),
            req("phase", Str, "pre-prepare|prepared|committed"),
        ],
        open: false,
    },
    KindSpec {
        kind: "pbft_view_change",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-pbft::runner",
        fields: &[
            req("label", Str, "consensus instance label"),
            req("view", U64, "view being abandoned"),
        ],
        open: false,
    },
    KindSpec {
        kind: "pbft_done",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-pbft::runner",
        fields: &[
            req("label", Str, "consensus instance label"),
            req("committed", Bool, "decision reached before the deadline"),
            req("view", U64, "deciding view"),
            req("latency", F64, "consensus latency, s"),
        ],
        open: false,
    },
    // ---- recovery path (clock: simulated seconds) ---------------------
    KindSpec {
        kind: "suspicion",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-elastico::recovery",
        fields: &[
            req("committee", U64, "monitored committee id"),
            req("phi", F64, "phi-accrual suspicion level (null = infinite)"),
        ],
        open: false,
    },
    KindSpec {
        kind: "failure_declared",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-elastico::recovery",
        fields: &[
            req("committee", U64, "failed committee id"),
            req(
                "phi",
                F64,
                "suspicion level at declaration (null = infinite)",
            ),
        ],
        open: false,
    },
    KindSpec {
        kind: "submission_retry",
        level: ObsLevel::Events,
        clock: "simulated seconds",
        site: "mvcom-elastico::recovery",
        fields: &[
            req("committee", U64, "retrying committee id"),
            req("attempt", U64, "retry ordinal (1 = first retry)"),
        ],
        open: false,
    },
    // ---- adversarial economics (clock: epoch index) --------------------
    KindSpec {
        kind: "adversary_act",
        level: ObsLevel::Events,
        clock: "epoch index",
        site: "mvcom-elastico::epoch / mvcom-bench::fig_adv",
        fields: &[
            req("committee", U64, "acting committee id"),
            req("epoch", U64, "epoch index"),
            req("strategy", Str, "misreport|freerider|starver"),
            req("ds", F64, "relative size misreport (reported/true − 1)"),
            req("dl", F64, "relative latency misreport (reported/true − 1)"),
        ],
        open: false,
    },
    KindSpec {
        kind: "flagged",
        level: ObsLevel::Events,
        clock: "epoch index",
        site: "mvcom-core::defense",
        fields: &[
            req("committee", U64, "flagged committee id"),
            req("epoch", U64, "epoch index"),
            req(
                "residual",
                F64,
                "median windowed residual that crossed the threshold",
            ),
            req("trust", F64, "trust weight after the flag discount"),
        ],
        open: false,
    },
    KindSpec {
        kind: "quarantine",
        level: ObsLevel::Events,
        clock: "epoch index",
        site: "mvcom-core::defense",
        fields: &[
            req("committee", U64, "quarantined committee id"),
            req("epoch", U64, "epoch index"),
            req("until", U64, "first epoch eligible for readmission"),
            req(
                "offenses",
                U64,
                "lifetime quarantine count (drives the backoff)",
            ),
        ],
        open: false,
    },
    KindSpec {
        kind: "rehabilitated",
        level: ObsLevel::Events,
        clock: "epoch index",
        site: "mvcom-core::defense",
        fields: &[
            req("committee", U64, "readmitted committee id"),
            req("epoch", U64, "epoch index"),
            req("trust", F64, "trust weight at readmission"),
        ],
        open: false,
    },
    // ---- baselines (clock: iteration index) ---------------------------
    KindSpec {
        kind: "solver_point",
        level: ObsLevel::Events,
        clock: "iteration",
        site: "mvcom-baselines",
        fields: &[
            req("solver", Str, "solver name"),
            req("iter", U64, "iteration"),
            req("best", F64, "best utility so far"),
        ],
        open: false,
    },
    KindSpec {
        kind: "solver_done",
        level: ObsLevel::Events,
        clock: "iteration",
        site: "mvcom-baselines / src/bin/mvcom.rs",
        fields: &[
            req("solver", Str, "solver name"),
            req("iters", U64, "iterations executed"),
            req("best", F64, "final best utility"),
        ],
        open: false,
    },
    // ---- daemon (clock: logical ingest seconds, EpochClock) -----------
    KindSpec {
        kind: "epoch_open",
        level: ObsLevel::Events,
        clock: "logical ingest seconds (EpochClock)",
        site: "mvcom-daemon::daemon",
        fields: &[
            req("epoch", U64, "epoch index being opened"),
            req("planned", U64, "reports that will close the epoch"),
        ],
        open: false,
    },
    KindSpec {
        kind: "ingest_batch",
        level: ObsLevel::Events,
        clock: "logical ingest seconds (EpochClock)",
        site: "mvcom-daemon::daemon",
        fields: &[
            req("epoch", U64, "epoch index the batch lands in"),
            req("batch", U64, "batch index within the epoch"),
            req("reports", U64, "reports ingested by this batch"),
            req("txs", U64, "transactions offered by this batch"),
        ],
        open: false,
    },
    KindSpec {
        kind: "epoch_close",
        level: ObsLevel::Summary,
        clock: "logical ingest seconds (EpochClock)",
        site: "mvcom-daemon::daemon",
        fields: &[
            req("epoch", U64, "epoch index being closed"),
            req("reports", U64, "reports ingested this epoch"),
            req("offered_txs", U64, "transactions offered (ground truth)"),
            req("admitted", U64, "committees admitted by the schedule"),
            req("admitted_txs", U64, "transactions admitted (ground truth)"),
            req(
                "utility",
                F64,
                "scheduling objective of the chosen committee set",
            ),
            req("alerts", U64, "threshold alerts fired by this epoch"),
        ],
        open: false,
    },
    KindSpec {
        kind: "history_append",
        level: ObsLevel::Events,
        clock: "logical ingest seconds (EpochClock)",
        site: "mvcom-daemon::daemon",
        fields: &[
            req("record", Str, "history record kind (Header|Epoch)"),
            req("bytes", U64, "framed size of the appended record"),
        ],
        open: false,
    },
    KindSpec {
        kind: "recovery_replay",
        level: ObsLevel::Summary,
        clock: "logical ingest seconds (EpochClock)",
        site: "mvcom-daemon::daemon",
        fields: &[
            req("epochs", U64, "epochs restored from the history log"),
            req(
                "cursor",
                U64,
                "ingest cursor restored from the last checkpoint",
            ),
            req(
                "dropped_bytes",
                U64,
                "torn-tail bytes truncated during replay",
            ),
        ],
        open: false,
    },
    KindSpec {
        kind: "alert_fired",
        level: ObsLevel::Summary,
        clock: "logical ingest seconds (EpochClock)",
        site: "mvcom-daemon::daemon",
        fields: &[
            req("epoch", U64, "epoch whose summary breached the threshold"),
            req(
                "alert",
                Str,
                "alert kind (low_utility|low_admission|high_quarantine)",
            ),
            req("threshold", F64, "armed threshold"),
            req("observed", F64, "observed value that breached it"),
        ],
        open: false,
    },
    // ---- metrics flush (clock: emitting site's logical clock) ---------
    KindSpec {
        kind: "metric",
        level: ObsLevel::Summary,
        clock: "emitting site's logical clock",
        site: "mvcom-obs::metrics (flush)",
        fields: &[
            req(
                "name",
                Str,
                "metric name (naming convention: area.noun_unit)",
            ),
            req("metric", Str, "counter|gauge"),
            req("value", F64, "current value"),
        ],
        open: false,
    },
    KindSpec {
        kind: "metric_hist",
        level: ObsLevel::Summary,
        clock: "emitting site's logical clock",
        site: "mvcom-obs::metrics (flush)",
        fields: &[
            req("name", Str, "histogram name"),
            req("count", U64, "observations"),
            req("sum", F64, "sum of observations"),
            req(
                "buckets",
                Str,
                "cumulative `le<bound>:<count>` pairs, comma-separated",
            ),
        ],
        open: false,
    },
];

/// Looks up the spec for `kind`.
pub fn spec(kind: &str) -> Option<&'static KindSpec> {
    KINDS.iter().find(|s| s.kind == kind)
}

/// A schema violation found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The event kind is not registered.
    UnknownKind(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present with the wrong wire type.
    WrongType(&'static str),
    /// A closed kind carries a field the schema does not declare.
    UndeclaredField(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::UnknownKind(k) => write!(f, "unknown event kind `{k}`"),
            SchemaError::MissingField(n) => write!(f, "missing required field `{n}`"),
            SchemaError::WrongType(n) => write!(f, "field `{n}` has the wrong type"),
            SchemaError::UndeclaredField(n) => write!(f, "undeclared field `{n}` on a closed kind"),
        }
    }
}

/// Validates `event` against the registry.
///
/// # Errors
///
/// The first [`SchemaError`] found, in field-declaration order.
pub fn validate(event: &Event) -> Result<(), SchemaError> {
    let Some(spec) = spec(event.kind) else {
        return Err(SchemaError::UnknownKind(event.kind.to_string()));
    };
    for field in spec.fields {
        match event.fields.iter().find(|(n, _)| *n == field.name) {
            Some((_, value)) if !field.ty.matches(value) => {
                return Err(SchemaError::WrongType(field.name));
            }
            Some(_) => {}
            None if field.required => return Err(SchemaError::MissingField(field.name)),
            None => {}
        }
    }
    if !spec.open {
        for (name, _) in &event.fields {
            if !spec.fields.iter().any(|f| f.name == *name) {
                return Err(SchemaError::UndeclaredField((*name).to_string()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_named_reasonably() {
        let mut seen = std::collections::BTreeSet::new();
        for k in KINDS {
            assert!(seen.insert(k.kind), "duplicate kind {}", k.kind);
            assert!(
                k.kind
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "kind {} breaks the snake_case convention",
                k.kind
            );
            assert!(!k.fields.is_empty() || k.open, "{} has no payload", k.kind);
        }
    }

    #[test]
    fn validate_accepts_a_well_formed_event() {
        let ev = Event::new(
            "reset_publish",
            3.0,
            &[
                ("version", Value::U64(2)),
                ("replica", Value::U64(0)),
                ("iter", Value::U64(3)),
            ],
        );
        assert_eq!(validate(&ev), Ok(()));
    }

    #[test]
    fn validate_rejects_each_violation_class() {
        let unknown = Event::new("nope", 0.0, &[]);
        assert!(matches!(
            validate(&unknown),
            Err(SchemaError::UnknownKind(_))
        ));
        let missing = Event::new("reset_publish", 0.0, &[("version", Value::U64(1))]);
        assert_eq!(
            validate(&missing),
            Err(SchemaError::MissingField("replica"))
        );
        let wrong = Event::new(
            "reset_publish",
            0.0,
            &[
                ("version", Value::F64(1.0)),
                ("replica", Value::U64(0)),
                ("iter", Value::U64(0)),
            ],
        );
        assert_eq!(validate(&wrong), Err(SchemaError::WrongType("version")));
        let extra = Event::new(
            "reset_publish",
            0.0,
            &[
                ("version", Value::U64(1)),
                ("replica", Value::U64(0)),
                ("iter", Value::U64(0)),
                ("bogus", Value::U64(9)),
            ],
        );
        assert!(matches!(
            validate(&extra),
            Err(SchemaError::UndeclaredField(_))
        ));
    }

    #[test]
    fn span_kinds_are_open_to_context_fields() {
        let ev = Event::new(
            "span_open",
            0.0,
            &[
                ("id", Value::U64(1)),
                ("name", Value::from("formation")),
                ("epoch", Value::U64(4)),
            ],
        );
        assert_eq!(validate(&ev), Ok(()));
    }

    #[test]
    fn every_kind_is_documented_in_observability_md() {
        // OBSERVABILITY.md lives at the workspace root, two levels up.
        let doc = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../OBSERVABILITY.md"
        ))
        .expect("OBSERVABILITY.md must exist at the workspace root");
        for k in KINDS {
            assert!(
                doc.contains(&format!("`{}`", k.kind)),
                "event kind `{}` is not documented in OBSERVABILITY.md",
                k.kind
            );
            for f in k.fields {
                assert!(
                    doc.contains(&format!("`{}`", f.name)),
                    "field `{}` of `{}` is not documented in OBSERVABILITY.md",
                    f.name,
                    k.kind
                );
            }
        }
    }
}
