//! End-to-end tests of the rule engine over the fixture corpus, plus the
//! guarantee the whole point of the tool rests on: the real workspace is
//! clean.
//!
//! Each `*_bad.rs` fixture is linted under a virtual deterministic-crate
//! path and must produce *exactly* the expected `(rule, line)` multiset —
//! not "at least one finding" — so a regression that drops or duplicates
//! findings fails loudly. Each `*_good.rs` twin must be silent.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::Path;

use mvcom_lint::{lint_source, lint_workspace, Finding, Rule};

/// The `(rule, line)` projection of a finding list, in engine order.
fn shape(findings: &[Finding]) -> Vec<(Rule, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_fixture_flags_every_hazard_and_only_those() {
    let findings = lint_source(
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![
            (Rule::D1, 3),  // use … HashMap
            (Rule::D1, 4),  // use … HashSet
            (Rule::D1, 7),  // SystemTime::now
            (Rule::D1, 8),  // Instant::now
            (Rule::D1, 9),  // thread_rng
            (Rule::D1, 13), // HashSet return type
            (Rule::D1, 14), // HashMap type ascription
            (Rule::D1, 14), // HashMap::new
        ],
        "{findings:#?}"
    );
}

#[test]
fn d1_container_rule_only_binds_deterministic_crates() {
    // The same file under a non-deterministic crate keeps the wall-clock
    // and thread_rng findings but drops the container findings.
    let findings = lint_source(
        "crates/baselines/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::D1, 7), (Rule::D1, 8), (Rule::D1, 9)],
        "{findings:#?}"
    );
    // Under crates/bench even those are sanctioned: benches measure.
    let findings = lint_source(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn d1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn p1_fixture_flags_unwrap_expect_and_constant_index() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::P1, 4), (Rule::P1, 5), (Rule::P1, 6)],
        "{findings:#?}"
    );
}

#[test]
fn p1_rule_stands_down_in_test_paths() {
    // The identical source under tests/ is test code end to end.
    let findings = lint_source("tests/fixture.rs", include_str!("fixtures/p1_bad.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn p1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn f1_fixture_flags_partial_cmp_and_float_literal_equality() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/f1_bad.rs"),
    );
    // `partial_cmp(…).unwrap()` is both a P1 (it panics) and an F1 (it
    // panics *because of NaN*); per-line ordering puts P1 first.
    assert_eq!(
        shape(&findings),
        vec![(Rule::P1, 4), (Rule::F1, 4), (Rule::F1, 5), (Rule::F1, 8),],
        "{findings:#?}"
    );
}

#[test]
fn f1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/f1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn t1_fixture_flags_bare_ignore_even_in_test_code() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/t1_bad.rs"),
    );
    assert_eq!(shape(&findings), vec![(Rule::T1, 6)], "{findings:#?}");
}

#[test]
fn t1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/t1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn a0_malformed_annotation_is_reported_and_silences_nothing() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/a0_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::A0, 3), (Rule::P1, 5)],
        "{findings:#?}"
    );
}

#[test]
fn finding_display_is_file_line_rule() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/t1_bad.rs"),
    );
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/fixture.rs:6: [T1]"),
        "{rendered}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = lint_workspace(root).expect("workspace walk");
    assert!(report.files_scanned > 50, "only {}", report.files_scanned);
    assert!(
        report.clean(),
        "the workspace must lint clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
