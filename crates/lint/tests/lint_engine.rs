//! End-to-end tests of the rule engine over the fixture corpus, plus the
//! guarantee the whole point of the tool rests on: the real workspace is
//! clean.
//!
//! Each `*_bad.rs` fixture is linted under a virtual deterministic-crate
//! path and must produce *exactly* the expected `(rule, line)` multiset —
//! not "at least one finding" — so a regression that drops or duplicates
//! findings fails loudly. Each `*_good.rs` twin must be silent.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use std::path::Path;

use mvcom_lint::{lint_source, lint_workspace, Finding, Rule};

/// The `(rule, line)` projection of a finding list, in engine order.
fn shape(findings: &[Finding]) -> Vec<(Rule, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_fixture_flags_every_hazard_and_only_those() {
    let findings = lint_source(
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![
            (Rule::D1, 3),  // use … HashMap
            (Rule::D1, 4),  // use … HashSet
            (Rule::D1, 7),  // SystemTime::now
            (Rule::D1, 8),  // Instant::now
            (Rule::D1, 9),  // thread_rng
            (Rule::D1, 13), // HashSet return type
            // Line 14 names `HashMap` twice (ascription + `::new`); the
            // identical diagnostics collapse to one finding.
            (Rule::D1, 14),
        ],
        "{findings:#?}"
    );
}

#[test]
fn d1_container_rule_only_binds_deterministic_crates() {
    // The same file under a non-deterministic crate keeps the wall-clock
    // and thread_rng findings but drops the container findings.
    let findings = lint_source(
        "crates/baselines/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::D1, 7), (Rule::D1, 8), (Rule::D1, 9)],
        "{findings:#?}"
    );
    // Under crates/bench even those are sanctioned: benches measure.
    let findings = lint_source(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d1_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn d1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn p1_fixture_flags_unwrap_expect_and_constant_index() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::P1, 4), (Rule::P1, 5), (Rule::P1, 6)],
        "{findings:#?}"
    );
}

#[test]
fn p1_rule_stands_down_in_test_paths() {
    // The identical source under tests/ is test code end to end.
    let findings = lint_source("tests/fixture.rs", include_str!("fixtures/p1_bad.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn p1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn f1_fixture_flags_partial_cmp_and_float_literal_equality() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/f1_bad.rs"),
    );
    // `partial_cmp(…).unwrap()` is both a P1 (it panics) and an F1 (it
    // panics *because of NaN*); per-line ordering puts P1 first.
    assert_eq!(
        shape(&findings),
        vec![(Rule::P1, 4), (Rule::F1, 4), (Rule::F1, 5), (Rule::F1, 8),],
        "{findings:#?}"
    );
}

#[test]
fn f1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/f1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn t1_fixture_flags_bare_ignore_even_in_test_code() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/t1_bad.rs"),
    );
    assert_eq!(shape(&findings), vec![(Rule::T1, 6)], "{findings:#?}");
}

#[test]
fn t1_good_twin_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/t1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn a0_malformed_annotation_is_reported_and_silences_nothing() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/a0_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::A0, 3), (Rule::P1, 5)],
        "{findings:#?}"
    );
}

#[test]
fn c1_fixture_flags_emission_reached_through_the_call_graph() {
    // `worker_body` never spawns anything itself; it is in the parallel
    // region only because the spawned closure calls it.
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c1_bad.rs"),
    );
    assert_eq!(shape(&findings), vec![(Rule::C1, 4)], "{findings:#?}");
}

#[test]
fn c1_good_twin_builds_its_own_handle_and_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn c2_fixture_flags_interior_mutability_and_captured_mutation() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c2_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::C2, 8), (Rule::C2, 9)],
        "{findings:#?}"
    );
}

#[test]
fn c2_good_twin_keeps_state_task_local_and_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c2_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn c3_fixture_flags_weak_ordering_and_unordered_lock_pair() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c3_bad.rs"),
    );
    assert_eq!(
        shape(&findings),
        vec![(Rule::C3, 7), (Rule::C3, 9)],
        "{findings:#?}"
    );
}

#[test]
fn c3_good_twin_justifies_its_relaxation_and_is_silent() {
    // The annotated `Ordering::Relaxed` is absorbed by the allow (which
    // is therefore used, so no W1 either); the single lock receiver
    // needs no documented order.
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c3_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn c4_fixture_flags_worker_count_branching_but_not_the_partitioner() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c4_bad.rs"),
    );
    // Line 5's `workers <= 1` fast path is the partitioner's own and
    // sits outside the region; only the in-closure comparison (10) and
    // the global `threads()` read (13) fire.
    assert_eq!(
        shape(&findings),
        vec![(Rule::C4, 10), (Rule::C4, 13)],
        "{findings:#?}"
    );
}

#[test]
fn c4_good_twin_partitions_outside_the_region_and_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/c4_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn w1_fixture_flags_the_stale_allow() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/w1_bad.rs"),
    );
    assert_eq!(shape(&findings), vec![(Rule::W1, 3)], "{findings:#?}");
}

#[test]
fn w1_good_twin_allow_absorbs_a_finding_and_is_silent() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/w1_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn u1_fixture_flags_crate_roots_only() {
    let bad = include_str!("fixtures/u1_bad.rs");
    let findings = lint_source("crates/foo/src/lib.rs", bad);
    assert_eq!(shape(&findings), vec![(Rule::U1, 1)], "{findings:#?}");
    // The same file is fine as a plain module…
    assert!(lint_source("crates/foo/src/util.rs", bad).is_empty());
    // …and as a test target (no unsafe surface of its own).
    assert!(lint_source("crates/foo/tests/util.rs", bad).is_empty());
}

#[test]
fn u1_good_twin_carries_the_forbid_and_is_silent() {
    let findings = lint_source("crates/foo/src/lib.rs", include_str!("fixtures/u1_good.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn finding_display_is_file_line_rule() {
    let findings = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/t1_bad.rs"),
    );
    let rendered = findings[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/fixture.rs:6: [T1]"),
        "{rendered}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    let report = lint_workspace(root).expect("workspace walk");
    assert!(report.files_scanned > 50, "only {}", report.files_scanned);
    assert!(
        report.clean(),
        "the workspace must lint clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
