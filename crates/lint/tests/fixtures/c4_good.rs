//! Fixture: only the partitioner consults the worker count; each task
//! sees just its own slice.

pub fn fan_out(items: &[u64], workers: usize) {
    let stride = items.len().div_ceil(workers.max(1)).max(1);
    crossbeam::scope(|s| {
        for chunk in items.chunks(stride) {
            s.spawn(move |_| {
                let mut sum = 0u64;
                for v in chunk {
                    sum += *v;
                }
            });
        }
    });
}
