//! Fixture: a justified relaxation rides an annotation; a single lock
//! receiver needs no documented order.

pub fn fan_out(stop: &AtomicBool, slots: &Mutex<u64>) {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            // lint: allow(C3, shutdown hint only; a missed flag costs one extra round)
            stop.store(true, Ordering::Relaxed);
            let guard = slots.lock();
            drop(guard);
        });
    });
}
