//! Fixture: the deterministic counterparts of every D1 hazard.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn seeded(seed: u64) -> u64 {
    let mut rng = mvcom_simnet::rng::master(seed);
    rng.next_u64()
}

pub fn stable(order: &[u32]) -> BTreeSet<u32> {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    order.iter().copied().chain(m.into_keys()).collect()
}
