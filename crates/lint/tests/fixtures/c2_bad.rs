//! Fixture: shared mutable state inside a spawned closure — interior
//! mutability and mutation of a captured variable.

pub fn fan_out() {
    let mut merged = 0u64;
    crossbeam::scope(|s| {
        s.spawn(move |_| {
            let scratch = RefCell::new(0u64);
            merged += scratch.into_inner();
        });
    });
}
