//! Fixture: every P1 hazard in non-test library code.

pub fn panicky(xs: &[u64]) -> u64 {
    let first = *xs.first().unwrap();
    let second = *xs.get(1).expect("two items");
    let third = xs[2];
    first + second + third
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_test_code() {
        let xs = [1u64, 2, 3];
        assert_eq!(super::panicky(&xs), 6);
        let _ = xs.first().unwrap();
    }
}
