//! Fixture: a bare `#[ignore]` (T1 applies inside test code too).

#[cfg(test)]
mod tests {
    #[test]
    #[ignore]
    fn slow_test() {}
}
