//! Fixture: an allow that absorbs a finding is used, not stale.

pub fn head(xs: &[u64]) -> u64 {
    // lint: allow(P1, callers guarantee at least one element)
    xs[0]
}
