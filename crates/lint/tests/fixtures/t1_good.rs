//! Fixture: an `#[ignore]` that states its reason.

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "takes minutes; run with --ignored in nightly CI"]
    fn slow_test() {}
}
