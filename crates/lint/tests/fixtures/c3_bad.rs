//! Fixture: a sub-`SeqCst` ordering with no written argument, and locks
//! on two receivers with no canonical order the analyzer can see.

pub fn fan_out(stop: &AtomicBool, queue: &Mutex<u64>, slots: &Mutex<u64>) {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            stop.store(true, Ordering::Relaxed);
            let task = queue.lock();
            let out = slots.lock();
        });
    });
}
