//! Fixture: a body that builds its own handle owns its event ordering.

pub fn fan_out(obs: &Obs) {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            let (worker, capture) = obs.deferred();
            worker.emit("se.round", 1.0, &[]);
            capture
        });
    });
}
