//! Fixture: every F1 hazard in non-test library code.

pub fn hazards(a: f64, b: f64) -> bool {
    let ord = a.partial_cmp(&b).unwrap();
    if a == 0.5 {
        return false;
    }
    b != 1000.5 && ord.is_lt()
}
