//! Fixture: worker code branching on the worker count. The partitioner's
//! own `workers <= 1` fast path sits outside the region and passes.

pub fn fan_out(workers: usize) {
    if workers <= 1 {
        return;
    }
    crossbeam::scope(|s| {
        s.spawn(move |_| {
            if workers > 2 {
                wide_path();
            }
            let lanes = threads();
        });
    });
}
