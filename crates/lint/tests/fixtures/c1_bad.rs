//! Fixture: direct `Obs` emission from inside the parallel region.

pub fn worker_body(obs: &Obs) {
    obs.emit("se.round", 1.0, &[]);
}

pub fn fan_out(obs: &Obs) {
    crossbeam::scope(|s| {
        s.spawn(|_| worker_body(obs));
    });
}
