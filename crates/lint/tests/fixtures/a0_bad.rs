//! Fixture: a malformed annotation neither parses nor silences.

// lint: allow(P1)
pub fn f(xs: &[u64]) -> u64 {
    xs[0]
}
