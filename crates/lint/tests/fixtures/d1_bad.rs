//! Fixture: every D1 hazard in one deterministic-crate file.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn wall_clock_seed() -> u64 {
    let t = std::time::SystemTime::now();
    let started = std::time::Instant::now();
    let mut rng = thread_rng();
    rng.next_u64() + t.elapsed().as_nanos() as u64 + started.elapsed().as_nanos() as u64
}

pub fn unstable(order: &[u32]) -> HashSet<u32> {
    let m: HashMap<u32, u32> = HashMap::new();
    order.iter().copied().chain(m.into_keys()).collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_containers_are_fine_in_test_code() {
        let _ = HashMap::<u32, u32>::new();
    }
}
