//! Fixture: task-local state flows out through the task's return value.

pub fn fan_out() -> u64 {
    crossbeam::scope(|s| {
        let handle = s.spawn(|_| {
            let mut local = 0u64;
            local += 1;
            local
        });
        handle.join()
    })
}
