//! Fixture: an allow that suppresses nothing is stale and reported.

// lint: allow(P1, the index is bounds-checked two lines up)
pub fn tidy(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
