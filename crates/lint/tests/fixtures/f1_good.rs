//! Fixture: total-order float comparisons that pass F1.

pub fn sound(a: f64, b: f64) -> bool {
    let ord = a.total_cmp(&b);
    if mvcom_types::latency::approx_eq(a, 0.5, 1e-12) {
        return false;
    }
    !mvcom_types::latency::approx_eq(b, 1000.5, 1e-12) && ord.is_lt()
}
