//! Fixture: the sanctioned alternatives to each P1 hazard.

pub fn careful(xs: &[u64]) -> Option<u64> {
    let first = *xs.first()?;
    // lint: allow(P1, callers guarantee at least two elements)
    let second = *xs.get(1).expect("two items");
    let third = *xs.get(2).unwrap_or(&0);
    Some(first + second + third)
}
