//! Property tests: the lexer and the full rule engine are total — no
//! input, however mangled, may panic or mis-count lines.
//!
//! Two past bugs give these teeth: the escape branch of string literals
//! once skipped `\` + newline without bumping the line counter (every
//! later finding drifted upward), and an escape at end-of-input could
//! overshoot the buffer. Both classes are exactly what arbitrary byte
//! soup and delimiter soup reach.

use mvcom_lint::lexer::lex;
use mvcom_lint::lint_source;
use proptest::prelude::*;

/// Bytes biased toward lexer edge paths: string/char delimiters,
/// escapes, comment openers, raw-string guts, and newlines.
const DELIMITER_SOUP: [u8; 16] = [
    b'"', b'\\', b'\n', b'/', b'*', b'\'', b'r', b'#', b'b', b' ', b'(', b')', b'0', b'.', b'=',
    b'!',
];

/// Line numbers must start at 1 and never decrease along the token
/// stream, and every comment must know where it ends.
fn lexes_coherently(src: &str) {
    let out = lex(src);
    let mut last = 1u32;
    for t in &out.tokens {
        assert!(t.line >= last, "token line went backwards in {src:?}");
        last = t.line;
    }
    for c in &out.comments {
        assert!(c.end_line >= c.line, "comment ends before it starts");
    }
}

proptest! {
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        lexes_coherently(&src);
        // The full engine (lexer + call graph + every rule) is equally
        // total; findings on garbage are fine, panics are not.
        let _ = lint_source("crates/core/src/fuzz.rs", &src);
    }

    #[test]
    fn lexer_is_total_on_delimiter_soup(picks in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes: Vec<u8> = picks
            .iter()
            .map(|b| DELIMITER_SOUP[usize::from(*b) % DELIMITER_SOUP.len()])
            .collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        lexes_coherently(&src);
        let _ = lint_source("crates/core/src/fuzz.rs", &src);
    }
}
