//! The reachability pass behind the C-rule family: a per-crate fn→fn
//! call graph over the lexer's token stream, used to mark the **parallel
//! region** — every function or closure that can execute on a worker
//! thread.
//!
//! The workspace has exactly one sanctioned fan-out idiom (three
//! instances of it: `mvcom_core::se::ParallelRunner`, elastico's stage-3
//! committee pool, and `mvcom_bench::harness::run_tasks`): tasks are
//! claimed off a shared counter and results land in per-task slots. The
//! C-rules only make sense *inside* that region — `Ordering::Relaxed` on
//! a caller-side cached value is fine, the same token inside a spawned
//! closure needs a justification. So the region is computed, not guessed:
//!
//! 1. **Roots.** Closure literals appearing (lexically) inside the
//!    argument list of a `spawn(…)` call or a `run_tasks(…)` call. When a
//!    function calls `run_tasks(tasks)` with a pre-built vector (the
//!    figure-experiment idiom), every closure literal in that function
//!    becomes a root — an over-approximation that errs toward checking.
//! 2. **Reachability.** From each root, called names are resolved
//!    *within the crate*: direct calls (`execute_pbft(…)`) to every
//!    same-name `fn`, calls to `let`-bound closures in the same file, and
//!    method calls (`resets.poll(…)`) to every same-name `fn` — except
//!    `AMBIENT_METHODS`, ubiquitous names (`new`, `run`, `len`, …)
//!    whose name-only resolution would connect unrelated code. The
//!    closure of that relation is the parallel region.
//!
//! This is a lexical over/under-approximation, not rustc: cross-crate
//! calls are not followed (the deferred-`Obs` hand-off at a crate
//! boundary is the documented contract instead), and trait dispatch
//! resolves by name. Both limits are deliberate — see DESIGN.md §12.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{LexOutput, TokKind, Token};

/// Method names never followed across the graph: name-only resolution of
/// these would wire the whole crate together (`SeEngine::new` vs
/// `Network::new`, every figure's `run`, …). Direct calls are always
/// followed; a worker helper worth tracking has a distinctive name.
const AMBIENT_METHODS: [&str; 24] = [
    "new",
    "default",
    "clone",
    "run",
    "build",
    "solve",
    "validate",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "take",
    "next",
    "iter",
    "into_iter",
    "map",
    "collect",
    "write",
    "flush",
    "lock",
    "to_string",
];

/// Keywords that look like `ident(…)` call sites but are not calls.
const CALL_KEYWORDS: [&str; 9] = [
    "if", "while", "match", "for", "loop", "return", "fn", "let", "move",
];

/// One span of the parallel region: a token range (inclusive) in one
/// file of the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    /// Index into the file list handed to [`parallel_units`].
    pub file: usize,
    /// First token of the body (the opening delimiter or first token).
    pub start: usize,
    /// Last token of the body, inclusive.
    pub end: usize,
    /// `true` for a closure body (spawned directly or reached through a
    /// `let` binding — captures live there either way), `false` for a
    /// named function reached through the call graph.
    pub root: bool,
    /// For closure units, the token range of the parameter list
    /// (`|here|`); `None` for plain functions. Closure parameters are
    /// locals, everything else mutated inside is a capture (C2).
    pub params: Option<(usize, usize)>,
}

impl Unit {
    /// Whether token index `i` of the unit's file lies inside the unit.
    pub fn contains(&self, i: usize) -> bool {
        (self.start..=self.end).contains(&i)
    }
}

/// A function definition: its name and body token range.
#[derive(Debug, Clone)]
struct FnDef {
    name: String,
    file: usize,
    body: (usize, usize),
}

/// A closure literal: its body token range and, when bound with
/// `let name = |…| …`, the binding name calls can resolve to.
#[derive(Debug, Clone)]
struct ClosureDef {
    binding: Option<String>,
    file: usize,
    params: (usize, usize),
    body: (usize, usize),
}

/// One crate file as the region pass sees it: its tokens, the lines
/// covered by `#[cfg(test)]` items, and whether the whole file is test
/// scaffolding (`tests/`, `benches/`, `examples/`).
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    pub lexed: &'a LexOutput,
    pub test_lines: &'a BTreeSet<u32>,
    pub test_path: bool,
}

/// Computes the parallel region of one crate.
///
/// Test code — whole `tests/`/`benches/`/`examples/` files and
/// `#[cfg(test)]` regions — contributes nothing to the graph: a test
/// *exercises* the parallel region (often at several thread counts, via
/// direct `set_threads`/`run_tasks` calls), its closures do not run
/// inside it, and rooting them would flood the partitioner itself into
/// the region through the test's own driver calls.
pub fn parallel_units(files: &[FileInput]) -> Vec<Unit> {
    let mut fns: Vec<FnDef> = Vec::new();
    let mut closures: Vec<ClosureDef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if file.test_path {
            continue;
        }
        collect_fns(fi, &file.lexed.tokens, &mut fns);
        collect_closures(fi, &file.lexed.tokens, &mut closures);
    }

    let closure_params: BTreeMap<(usize, usize, usize), (usize, usize)> = closures
        .iter()
        .map(|c| ((c.file, c.body.0, c.body.1), c.params))
        .collect();

    // Roots: closures inside spawn(...) / run_tasks(...) argument lists,
    // plus (fallback) every closure of a fn that calls run_tasks with a
    // pre-built task vector.
    let mut roots: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        if file.test_path {
            continue;
        }
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || (t.text != "spawn" && t.text != "run_tasks") {
                continue;
            }
            if toks.get(i + 1).is_none_or(|n| n.text != "(") {
                continue;
            }
            if file.test_lines.contains(&t.line) {
                continue;
            }
            let Some(close) = matching(toks, i + 1, "(", ")") else {
                continue;
            };
            let mut found_closure = false;
            for c in closures.iter().filter(|c| c.file == fi) {
                if c.body.0 > i + 1 && c.body.1 < close {
                    roots.insert((fi, c.body.0, c.body.1));
                    found_closure = true;
                }
            }
            if t.text == "run_tasks" && !found_closure {
                // `run_tasks(tasks)`: the tasks were built earlier in the
                // enclosing fn — treat all of its closures as roots.
                if let Some(f) = fns
                    .iter()
                    .find(|f| f.file == fi && (f.body.0..=f.body.1).contains(&i))
                {
                    for c in closures.iter().filter(|c| c.file == fi) {
                        if c.body.0 >= f.body.0 && c.body.1 <= f.body.1 {
                            roots.insert((fi, c.body.0, c.body.1));
                        }
                    }
                }
            }
        }
    }

    // Transitive closure over called names.
    let mut region: BTreeSet<(usize, usize, usize, bool)> =
        roots.iter().map(|&(f, s, e)| (f, s, e, true)).collect();
    let mut work: Vec<(usize, usize, usize)> = roots.iter().copied().collect();
    while let Some((fi, start, end)) = work.pop() {
        let toks = &files[fi].lexed.tokens;
        for name in called_names(toks, start, end) {
            for f in fns.iter().filter(|f| f.name == name) {
                let key = (f.file, f.body.0, f.body.1, false);
                if region
                    .iter()
                    .all(|&(a, b, c, _)| (a, b, c) != (key.0, key.1, key.2))
                {
                    region.insert(key);
                    work.push((f.file, f.body.0, f.body.1));
                }
            }
            // `let run_one = |task| …; … run_one(task)`: resolve within
            // the same file (closure bindings don't cross files).
            for c in closures.iter().filter(|c| c.file == fi) {
                if c.binding.as_deref() == Some(name.as_str()) {
                    let key = (c.file, c.body.0, c.body.1, true);
                    if region
                        .iter()
                        .all(|&(a, b, cc, _)| (a, b, cc) != (key.0, key.1, key.2))
                    {
                        region.insert(key);
                        work.push((c.file, c.body.0, c.body.1));
                    }
                }
            }
        }
    }

    region
        .into_iter()
        .map(|(file, start, end, root)| Unit {
            file,
            start,
            end,
            root,
            params: closure_params.get(&(file, start, end)).copied(),
        })
        .collect()
}

/// Called names (direct and followed method calls) within a token range.
fn called_names(toks: &[Token], start: usize, end: usize) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `.name(…)` and `Path::name(…)` resolve by name alone, so the
        // ambient stoplist applies to both; a plain `name(…)` call is
        // already unambiguous enough to always follow.
        let qualified = i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "::");
        if qualified && AMBIENT_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if !qualified && i > 0 && toks[i - 1].text == "fn" {
            continue; // a definition, not a call
        }
        names.insert(t.text.clone());
    }
    names
}

/// Collects `fn name … { body }` definitions (methods included; trait
/// declarations without a body are skipped).
fn collect_fns(file: usize, toks: &[Token], out: &mut Vec<FnDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // The body is the first `{` before any top-level `;` (which would
        // mean a bodyless trait-method declaration).
        let mut j = i + 2;
        let mut body = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "{" => {
                    body = matching(toks, j, "{", "}").map(|close| (j, close));
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        match body {
            Some((open, close)) => {
                out.push(FnDef {
                    name: name_tok.text.clone(),
                    file,
                    body: (open, close),
                });
                i += 2; // nested fns inside the body are still found
            }
            None => i = j.max(i + 2),
        }
    }
}

/// Collects closure literals (`|args| body`, `move || body`, …) with
/// their body ranges and optional `let` binding names.
fn collect_closures(file: usize, toks: &[Token], out: &mut Vec<ClosureDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let is_pipe = t.kind == TokKind::Punct && (t.text == "|" || t.text == "||");
        if !is_pipe || !closure_position(toks, i) {
            i += 1;
            continue;
        }
        // Find the end of the parameter list.
        let params_end = if t.text == "||" {
            i
        } else {
            match next_pipe(toks, i + 1) {
                Some(p) => p,
                None => {
                    i += 1;
                    continue;
                }
            }
        };
        let Some((body_start, body_end)) = closure_body(toks, params_end + 1) else {
            i = params_end + 1;
            continue;
        };
        out.push(ClosureDef {
            binding: binding_name(toks, i),
            file,
            params: (i, params_end),
            body: (body_start, body_end),
        });
        // Continue *inside* the params/body so nested closures are found.
        i += 1;
    }
}

/// Whether the pipe token at `i` starts a closure (as opposed to a
/// binary `|`/`||` operator): the preceding token must not be something
/// an operand ends with.
fn closure_position(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return true;
    };
    match prev.kind {
        TokKind::Ident => prev.text == "move" || prev.text == "return" || prev.text == "else",
        TokKind::Punct => !matches!(prev.text.as_str(), ")" | "]" | "}"),
        _ => false,
    }
}

/// The closing `|` of a parameter list opened just before `from`.
fn next_pipe(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "|" if depth == 0 => return Some(k),
                _ => {}
            }
        }
    }
    None
}

/// The token range of a closure body starting at `from` (just past the
/// parameter list): a block, a `-> Type { … }` block, or a single
/// expression running to the next `,`/`)`/`;`/`]` at depth 0.
fn closure_body(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    if toks.get(j).is_some_and(|t| t.text == "->") {
        // Skip the return type: the body block is the first `{` at
        // paren depth 0 (types contain no braces).
        let mut depth = 0i32;
        j += 1;
        loop {
            let t = toks.get(j)?;
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return None,
                _ => {}
            }
            j += 1;
        }
    }
    let first = toks.get(j)?;
    if first.text == "{" {
        let close = matching(toks, j, "{", "}")?;
        return Some((j, close));
    }
    // Expression body: run to the closing delimiter of the enclosing
    // context.
    let start = j;
    let mut depth = 0i32;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth == 0 => {
                    return Some((start, j.saturating_sub(1).max(start)))
                }
                ")" | "]" | "}" => depth -= 1,
                "," | ";" if depth == 0 => return Some((start, j.saturating_sub(1).max(start))),
                _ => {}
            }
        }
        j += 1;
    }
    Some((start, toks.len().saturating_sub(1)))
}

/// `let [mut] name = [move] |…|`: the binding name for the closure whose
/// first pipe token sits at `pipe`.
fn binding_name(toks: &[Token], pipe: usize) -> Option<String> {
    let mut j = pipe.checked_sub(1)?;
    if toks.get(j).is_some_and(|t| t.text == "move") {
        j = j.checked_sub(1)?;
    }
    if toks.get(j).is_none_or(|t| t.text != "=") {
        return None;
    }
    let name = toks.get(j.checked_sub(1)?)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut k = j.checked_sub(2)?;
    if toks.get(k).is_some_and(|t| t.text == "mut") {
        k = k.checked_sub(1)?;
    }
    (toks.get(k)?.text == "let").then(|| name.text.clone())
}

/// Index of the token closing the bracket opened at `open`.
pub(crate) fn matching(toks: &[Token], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == op {
                depth += 1;
            } else if t.text == cl {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn units_of(src: &str) -> Vec<Unit> {
        let lexed = lex(src);
        let no_tests = BTreeSet::new();
        parallel_units(&[FileInput {
            lexed: &lexed,
            test_lines: &no_tests,
            test_path: false,
        }])
    }

    /// The source lines a unit list covers, for readable assertions.
    fn lines(src: &str, units: &[Unit]) -> BTreeSet<u32> {
        let lexed = lex(src);
        let mut out = BTreeSet::new();
        for u in units {
            for t in &lexed.tokens[u.start..=u.end] {
                out.insert(t.line);
            }
        }
        out
    }

    #[test]
    fn spawn_closure_and_called_fn_are_in_region() {
        let src = "\
fn worker_body() { helper(); }
fn helper() { shared_step(); }
fn shared_step() {}
fn caller_only() {}
fn fan_out() {
    crossbeam::scope(|s| {
        s.spawn(|_| worker_body());
    });
    caller_only();
}
";
        let covered = lines(src, &units_of(src));
        assert!(covered.contains(&1), "worker_body: {covered:?}");
        assert!(covered.contains(&2), "helper: {covered:?}");
        assert!(covered.contains(&3), "shared_step: {covered:?}");
        assert!(
            !covered.contains(&4),
            "caller_only must stay out: {covered:?}"
        );
        assert!(
            !covered.contains(&9),
            "the serial tail must stay out: {covered:?}"
        );
    }

    #[test]
    fn let_bound_closure_is_followed() {
        let src = "\
fn leaf() {}
fn pool() {
    let run_one = |task: u32| -> u32 { leaf(); task };
    crossbeam::scope(|s| {
        s.spawn(|_| run_one(1));
    });
}
";
        let covered = lines(src, &units_of(src));
        assert!(covered.contains(&1), "leaf via run_one: {covered:?}");
        assert!(covered.contains(&3), "run_one body: {covered:?}");
    }

    #[test]
    fn run_tasks_vector_fallback_marks_fn_closures() {
        let src = "\
fn expensive_point(seed: u64) -> u64 { seed }
fn sweep() {
    let tasks: Vec<_> = (0..4).map(|i| move || expensive_point(i)).collect();
    let _ = run_tasks(tasks);
}
";
        let covered = lines(src, &units_of(src));
        assert!(covered.contains(&1), "expensive_point: {covered:?}");
    }

    #[test]
    fn ambient_methods_are_not_followed() {
        let src = "\
fn run(x: u64) -> u64 { x }
fn fan_out(engine: &Engine) {
    crossbeam::scope(|s| {
        s.spawn(|_| engine.run());
    });
}
";
        // `.run()` is ambient; the unrelated fn `run` stays out.
        let covered = lines(src, &units_of(src));
        assert!(!covered.contains(&1), "{covered:?}");
    }

    #[test]
    fn no_spawn_means_empty_region() {
        let src = "fn a() { b(); }\nfn b() {}\n";
        assert!(units_of(src).is_empty());
    }

    #[test]
    fn test_code_contributes_no_roots() {
        // A test or bench driving `run_tasks` at several thread counts
        // must not turn its own closures into roots (which would pull the
        // partitioner into the region through the test's direct calls).
        let src = "\
fn point(seed: u64) -> u64 { seed }
fn order_is_deterministic() {
    let tasks: Vec<_> = (0..4).map(|i| move || point(i)).collect();
    let _ = run_tasks(tasks);
}
";
        let lexed = lex(src);
        // Marked as a `#[cfg(test)]` region: no roots.
        let test_lines: BTreeSet<u32> = (1..=6).collect();
        let no_tests = BTreeSet::new();
        assert!(parallel_units(&[FileInput {
            lexed: &lexed,
            test_lines: &test_lines,
            test_path: false,
        }])
        .is_empty());
        // A whole test-path file (tests/, benches/): no roots either.
        assert!(parallel_units(&[FileInput {
            lexed: &lexed,
            test_lines: &no_tests,
            test_path: true,
        }])
        .is_empty());
        // Same source as first-party lib code: the fallback applies.
        assert!(!parallel_units(&[FileInput {
            lexed: &lexed,
            test_lines: &no_tests,
            test_path: false,
        }])
        .is_empty());
    }

    #[test]
    fn roots_are_marked_root() {
        let src = "\
fn helper() {}
fn fan_out() {
    crossbeam::scope(|s| {
        s.spawn(move |_| helper());
    });
}
";
        let units = units_of(src);
        assert!(units.iter().any(|u| u.root));
        assert!(units.iter().any(|u| !u.root));
    }
}
