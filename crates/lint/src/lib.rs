//! `mvcom-lint`: workspace-native static analysis for MVCom.
//!
//! The simulator's correctness claims (Theorem 1 mixing bounds, the
//! Lemma 4 / Theorem 2 perturbation analysis) assume bit-deterministic
//! replay under a seed and total float orderings in the SE/SA hot loops.
//! Those are invariants of the *codebase*, not of any one function, so
//! they are enforced by a first-party tool instead of convention: the
//! workspace builds fully offline against `shims/*`, which rules out
//! `syn`-based or registry lint frameworks.
//!
//! * [`lexer`] — a small self-contained Rust lexer (tokens + comments);
//! * [`callgraph`] — a per-crate fn→fn call graph over the token stream
//!   that marks the *parallel region* (everything reachable from closures
//!   handed to `spawn`/`run_tasks`);
//! * [`rules`] — the D1/P1/F1/T1 token rules, the region-scoped C1–C4
//!   concurrency rules, W1 stale-allow / U1 forbid-unsafe hygiene, and
//!   the `// lint: allow(P1, reason)` annotation grammar;
//! * [`model`] — a reusable interleaving-model DSL (states, atomic steps,
//!   memoized exhaustive exploration, invariant closures) with three
//!   models: the RESET bus, the `run_tasks` partition/merge protocol, and
//!   the `Obs` deferred replay buffer;
//! * [`interleave`] — the original RESET-bus checker API, now a port
//!   onto [`model`];
//! * [`lint_workspace`] — walks every `.rs` file under `crates/`, `src/`,
//!   `tests/`, and `examples/`, groups them per crate, and applies the
//!   rules.
//!
//! Run it as `cargo run -p mvcom-lint -- check`.

#![forbid(unsafe_code)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod callgraph;
pub mod interleave;
pub mod lexer;
pub mod model;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use interleave::{explore, BusModel, InterleaveConfig, InterleaveReport};
pub use model::{Exploration, Violation};
pub use rules::{lint_crate, lint_source, Finding, Rule, RuleSelection};

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl WorkspaceReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Directories under the workspace root that contain first-party sources.
/// `shims/` is vendored third-party API surface and deliberately out of
/// scope; `target/` is build output.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Path segments whose subtrees are skipped entirely: the lint's own
/// deliberately-bad fixture files, and build output.
const SKIP_SEGMENTS: [&str; 2] = ["fixtures", "target"];

/// Lints every first-party `.rs` file under `root` (the workspace root).
///
/// Files are grouped per crate (so the C-rules' call graph resolves
/// across a crate's modules) and visited in sorted path order so output
/// and exit codes are reproducible.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = WorkspaceReport::default();
    let mut by_crate: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for file in files {
        let source = fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("mvcom")
            .to_string();
        by_crate.entry(krate).or_default().push((rel, source));
        report.files_scanned += 1;
    }
    for group in by_crate.values() {
        let refs: Vec<(&str, &str)> = group
            .iter()
            .map(|(rel, src)| (rel.as_str(), src.as_str()))
            .collect();
        report.findings.extend(rules::lint_crate(&refs));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || SKIP_SEGMENTS.contains(&name.as_ref()) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_dirs_are_skipped() {
        // The walker must never see the deliberately-violating fixtures,
        // or the workspace could never be clean.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("lint crate sits two levels below the workspace root")
            .to_path_buf();
        let report = lint_workspace(&root).expect("workspace walk");
        assert!(report.files_scanned > 50, "{}", report.files_scanned);
    }
}
