//! The lint rules and the annotation grammar.
//!
//! Four token-level domain rules plus a concurrency-determinism family
//! guard the invariants MVCom's correctness argument leans on (see
//! DESIGN.md §7 and §12):
//!
//! | rule | guards                                                        |
//! |------|---------------------------------------------------------------|
//! | D1   | determinism: no seed-unstable containers in deterministic     |
//! |      | crates; no wall-clock / ambient RNG outside `crates/bench`    |
//! | P1   | panic-freedom: no `unwrap`/`expect`/constant index in         |
//! |      | non-test library code without a justification annotation      |
//! | F1   | float ordering: no `partial_cmp().unwrap()`, no `==`/`!=`     |
//! |      | against float literals — use the total-order helpers          |
//! | T1   | test hygiene: `#[ignore]` must carry a reason string          |
//! | C1   | parallel region: `Obs` emission must go through the           |
//! |      | deferred/replay buffer (or a handle built in the same body)   |
//! | C2   | parallel region: no `Rc`/`RefCell`/`Cell`/`UnsafeCell`, no    |
//! |      | mutation of captured variables inside spawned closures        |
//! | C3   | parallel region: atomics weaker than `SeqCst` and multi-lock  |
//! |      | acquisition need a documented protocol argument               |
//! | C4   | parallel region: no branching on thread count / worker index  |
//! |      | outside the partitioner itself                                |
//! | W1   | annotation hygiene: an `allow(…)` that suppresses nothing is  |
//! |      | stale and reported itself                                     |
//! | U1   | every crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*`)   |
//! |      | must carry `#![forbid(unsafe_code)]`                          |
//!
//! The C-rules fire only inside the **parallel region** computed by
//! [`crate::callgraph`]: everything reachable from closures handed to
//! `spawn`/`run_tasks`. A violation is silenced inline with
//!
//! ```text
//! // lint: allow(C3, reason why the relaxation is sound)
//! ```
//!
//! on the offending line or the line directly above it. The reason is
//! mandatory; a malformed annotation is itself reported (rule `A0`), and
//! an annotation that suppresses nothing is reported as `W1` (neither is
//! suppressible).

use std::collections::BTreeSet;
use std::fmt;

use crate::callgraph::{self, Unit};
use crate::lexer::{lex, Comment, LexOutput, TokKind, Token};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Determinism: order-stable containers, no wall-clock/ambient RNG.
    D1,
    /// Panic-freedom in non-test library code.
    P1,
    /// Float-ordering hazards.
    F1,
    /// Test hygiene.
    T1,
    /// Parallel region: `Obs` emission bypassing the deferred buffer.
    C1,
    /// Parallel region: shared mutable state captured by a closure.
    C2,
    /// Parallel region: weak atomic orderings / unordered multi-lock.
    C3,
    /// Parallel region: branching on thread count or worker index.
    C4,
    /// Stale `lint: allow` annotation (suppresses nothing).
    W1,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    U1,
    /// Malformed `lint:` annotation.
    A0,
}

impl Rule {
    /// Rules an annotation may suppress. `A0` and `W1` are meta-rules
    /// about the annotations themselves and cannot be allowed away.
    fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "P1" => Some(Rule::P1),
            "F1" => Some(Rule::F1),
            "T1" => Some(Rule::T1),
            "C1" => Some(Rule::C1),
            "C2" => Some(Rule::C2),
            "C3" => Some(Rule::C3),
            "C4" => Some(Rule::C4),
            "U1" => Some(Rule::U1),
            _ => None,
        }
    }

    /// Every rule by name, for `--rules` selection on the CLI.
    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "W1" => Some(Rule::W1),
            "A0" => Some(Rule::A0),
            other => Rule::parse(other),
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::D1,
        Rule::P1,
        Rule::F1,
        Rule::T1,
        Rule::C1,
        Rule::C2,
        Rule::C3,
        Rule::C4,
        Rule::W1,
        Rule::U1,
        Rule::A0,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A set of rules selected for reporting, parsed from `--rules`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSelection(BTreeSet<Rule>);

impl RuleSelection {
    /// Every rule (the default).
    pub fn all() -> Self {
        RuleSelection(Rule::ALL.into_iter().collect())
    }

    /// Parses `all` or a comma-separated rule list (`C1,C3,W1`).
    ///
    /// # Errors
    ///
    /// Returns the offending name when one is not a known rule.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "all" {
            return Ok(Self::all());
        }
        let mut set = BTreeSet::new();
        for name in s.split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(r) => {
                    set.insert(r);
                }
                None => return Err(format!("unknown rule `{name}`")),
            }
        }
        Ok(RuleSelection(set))
    }

    pub fn contains(&self, rule: Rule) -> bool {
        self.0.contains(&rule)
    }
}

impl Default for RuleSelection {
    fn default() -> Self {
        Self::all()
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Crates whose library code must iterate containers in seed-stable order
/// (they implement the deterministic virtual-time simulation the paper's
/// Theorem 1 / Theorem 2 experiments replay).
const DETERMINISTIC_CRATES: [&str; 3] = ["simnet", "elastico", "core"];

/// Keywords that can legally precede an array-literal `[`; an index
/// expression can only follow an identifier, `)`, or `]`, so these
/// exclude `for x in [0] {}`-style false positives.
const NON_POSTFIX_KEYWORDS: [&str; 14] = [
    "in", "mut", "return", "break", "else", "match", "if", "while", "for", "loop", "move", "ref",
    "let", "const",
];

/// What kind of file a path denotes, derived from workspace-relative
/// path components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileClass<'a> {
    /// `crates/<name>/…` → `<name>`; root `src/…`, `tests/…`, … → `mvcom`.
    krate: &'a str,
    /// Under a `tests/`, `benches/`, or `examples/` directory: P1/F1 and
    /// the D1 container rule do not apply (the D1 wall-clock rule still
    /// does — flaky tests are still flaky).
    test_path: bool,
}

fn classify(rel_path: &str) -> FileClass<'_> {
    let krate = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("mvcom");
    let test_path = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    FileClass { krate, test_path }
}

/// Whether `rel_path` is a crate root — the compilation-unit entry point
/// where `#![forbid(unsafe_code)]` must live. `tests/`, `benches/`, and
/// `examples/` targets are deliberately out of scope: they link against
/// already-audited library crates and carry no `unsafe` surface of their
/// own worth a per-file attribute.
fn is_crate_root(rel_path: &str) -> bool {
    rel_path.ends_with("src/lib.rs")
        || rel_path.ends_with("src/main.rs")
        || rel_path.contains("src/bin/")
}

/// Lints one file's source. `rel_path` must be workspace-relative with
/// `/` separators (e.g. `crates/simnet/src/gossip.rs`); it selects which
/// rules apply. The C-rules see only this file's call graph — use
/// [`lint_crate`] to resolve calls across a crate's files.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_crate(&[(rel_path, source)])
}

/// One file prepared for crate-level linting.
struct CrateFile<'a> {
    rel: &'a str,
    class: FileClass<'a>,
    lexed: LexOutput,
    test_lines: BTreeSet<u32>,
    allows: Vec<Allow>,
}

/// A parsed, well-formed `lint: allow(RULE, reason)` annotation and
/// whether it suppressed anything (for W1).
struct Allow {
    rule: Rule,
    /// Line the annotation starts on (where W1 reports it).
    line: u32,
    /// Covered lines: the comment's own lines plus the one after it.
    first: u32,
    last: u32,
    used: bool,
}

/// Lints the files of one crate together: token-level rules per file,
/// then the C-rule family over the crate-wide parallel region, then
/// stale-allow detection. Findings are sorted by `(file, line, rule)`.
pub fn lint_crate(files: &[(&str, &str)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut ctxs: Vec<CrateFile> = Vec::with_capacity(files.len());
    for &(rel, source) in files {
        let lexed = lex(source);
        let test_lines = test_region_lines(&lexed.tokens);
        let allows = parse_annotations(rel, &lexed.comments, &mut findings);
        ctxs.push(CrateFile {
            rel,
            class: classify(rel),
            lexed,
            test_lines,
            allows,
        });
    }

    for ctx in &ctxs {
        let scan = Scan {
            rel_path: ctx.rel,
            class: ctx.class,
            tokens: &ctx.lexed.tokens,
            test_lines: &ctx.test_lines,
        };
        scan.rule_d1(&mut findings);
        scan.rule_p1(&mut findings);
        scan.rule_f1(&mut findings);
        scan.rule_t1(&mut findings);
        scan.rule_u1(&mut findings);
    }

    let inputs: Vec<callgraph::FileInput> = ctxs
        .iter()
        .map(|c| callgraph::FileInput {
            lexed: &c.lexed,
            test_lines: &c.test_lines,
            test_path: c.class.test_path,
        })
        .collect();
    let units = callgraph::parallel_units(&inputs);
    for unit in &units {
        let ctx = &ctxs[unit.file];
        if ctx.class.test_path {
            continue; // test code exercises the region; it is not in it
        }
        let region = RegionScan { ctx, unit };
        region.rule_c1(&mut findings);
        region.rule_c2(&mut findings);
        region.rule_c3(&mut findings);
        region.rule_c4(&mut findings);
    }

    // Suppression: every allow covering a finding's (line, rule) absorbs
    // it and counts as used. A0/W1 findings are never suppressible.
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        if matches!(f.rule, Rule::A0 | Rule::W1) {
            kept.push(f);
            continue;
        }
        let mut suppressed = false;
        if let Some(ctx) = ctxs.iter_mut().find(|c| c.rel == f.file) {
            for a in &mut ctx.allows {
                if a.rule == f.rule && (a.first..=a.last).contains(&f.line) {
                    a.used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for ctx in &ctxs {
        for a in ctx.allows.iter().filter(|a| !a.used) {
            kept.push(Finding {
                rule: Rule::W1,
                file: ctx.rel.to_string(),
                line: a.line,
                message: format!(
                    "`lint: allow({}, …)` suppresses no finding; \
                     remove the stale annotation",
                    a.rule
                ),
            });
        }
    }
    kept.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    // Parallel units may overlap (a spawned closure sits inside a region
    // fn); the same token then trips a C-rule once per unit. Only exact
    // repeats collapse — distinct diagnostics on one line all stand.
    kept.dedup_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message) == (&b.file, b.line, b.rule, &b.message)
    });
    kept
}

/// Lines covered by `#[cfg(test)]` items (usually the trailing `mod tests`).
fn test_region_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        // `#![cfg(test)]` (inner attribute): the whole file is test code.
        let inner = tokens.get(i + 1).is_some_and(|t| t.text == "!");
        let open = i + if inner { 2 } else { 1 };
        if tokens.get(open).is_none_or(|t| t.text != "[") {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, "[", "]") else {
            break;
        };
        let is_cfg_test = tokens[open + 1..close].windows(4).any(|w| {
            matches!(w, [a, b, c, d]
                if a.text == "cfg" && b.text == "(" && c.text == "test" && d.text == ")")
        });
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        if inner {
            if let (Some(first), Some(last)) = (tokens.first(), tokens.last()) {
                for l in first.line..=last.line {
                    lines.insert(l);
                }
            }
            return lines;
        }
        // Skip any further outer attributes, then swallow one item: up to a
        // top-level `;`, or a `{ … }` body when one opens first.
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.text == "#")
            && tokens.get(j + 1).is_some_and(|t| t.text == "[")
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let start_line = tokens[i].line;
        let mut depth_paren = 0i32;
        let mut end = None;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "(" | "[" => depth_paren += 1,
                ")" | "]" => depth_paren -= 1,
                ";" if depth_paren == 0 => {
                    end = Some(j);
                    break;
                }
                "{" if depth_paren == 0 => {
                    end = matching(tokens, j, "{", "}");
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = end.unwrap_or(tokens.len() - 1);
        for l in start_line..=tokens[end].line {
            lines.insert(l);
        }
        i = end + 1;
    }
    lines
}

/// Index of the token closing the bracket opened at `open`.
fn matching(tokens: &[Token], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == op {
                depth += 1;
            } else if t.text == cl {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Index of the token opening the bracket closed at `close` (backwards).
fn rmatching(tokens: &[Token], close: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        let t = &tokens[k];
        if t.kind == TokKind::Punct {
            if t.text == cl {
                depth += 1;
            } else if t.text == op {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Parses `lint: allow(P1, reason)`-style annotations out of comments.
///
/// Only plain (non-doc) comments containing an `allow(` directly after
/// `lint:` are treated as annotation attempts; prose that merely mentions
/// the word is ignored, and doc comments are documentation — rustdoc that
/// *describes* the grammar must not parse as an instance of it.
/// Well-formed annotations are returned (an annotation covers its own
/// lines and the line immediately after it); malformed ones are reported
/// as `A0` findings.
fn parse_annotations(
    rel_path: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let text = c.text.as_str();
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| text.starts_with(d))
        {
            continue;
        }
        let mut rest = text;
        while let Some(at) = rest.find("lint:") {
            rest = &rest[at + "lint:".len()..];
            let body = rest.trim_start();
            if !body.starts_with("allow(") {
                continue;
            }
            let parsed = body
                .strip_prefix("allow(")
                .and_then(|b| b.split_once(')'))
                .and_then(|(inside, _)| inside.split_once(','))
                .and_then(|(rule, reason)| {
                    let rule = Rule::parse(rule.trim())?;
                    let reason = reason.trim();
                    (!reason.is_empty()).then_some(rule)
                });
            match parsed {
                Some(rule) => allows.push(Allow {
                    rule,
                    line: c.line,
                    first: c.line,
                    last: c.end_line + 1,
                    used: false,
                }),
                None => findings.push(Finding {
                    rule: Rule::A0,
                    file: rel_path.to_string(),
                    line: c.line,
                    message: "malformed lint annotation; expected \
                              `lint: allow(RULE, reason)` with a non-empty reason"
                        .to_string(),
                }),
            }
        }
    }
    allows
}

struct Scan<'a> {
    rel_path: &'a str,
    class: FileClass<'a>,
    tokens: &'a [Token],
    test_lines: &'a BTreeSet<u32>,
}

impl Scan<'_> {
    fn emit(&self, findings: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
        findings.push(Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            message,
        });
    }

    /// Library (non-test) code at `line`?
    fn lib_code(&self, line: u32) -> bool {
        !self.class.test_path && !self.test_lines.contains(&line)
    }

    fn rule_d1(&self, findings: &mut Vec<Finding>) {
        let deterministic = DETERMINISTIC_CRATES.contains(&self.class.krate);
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "HashMap" | "HashSet" if deterministic && self.lib_code(t.line) => {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        format!(
                            "`{}` iterates in seed-unstable order inside a deterministic \
                             crate; use `BTreeMap`/`BTreeSet` or an order-stable wrapper",
                            t.text
                        ),
                    );
                }
                "Instant"
                    if self.class.krate != "bench"
                        && self.tokens.get(i + 1).is_some_and(|n| n.text == "::")
                        && self.tokens.get(i + 2).is_some_and(|n| n.text == "now") =>
                {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        "`Instant::now` reads the wall clock; deterministic code must \
                         derive time from `SimTime` (only `crates/bench` may measure)"
                            .to_string(),
                    );
                }
                "SystemTime" if self.class.krate != "bench" => {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        "`SystemTime` reads the wall clock; deterministic code must \
                         derive time from `SimTime` (only `crates/bench` may measure)"
                            .to_string(),
                    );
                }
                "thread_rng" if self.class.krate != "bench" => {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        "`thread_rng` is ambient, unseeded randomness; fork a stream \
                         from `mvcom_simnet::rng::master(seed)` instead"
                            .to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    fn rule_p1(&self, findings: &mut Vec<Finding>) {
        let toks = self.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !self.lib_code(t.line) {
                continue;
            }
            // `.unwrap()` / `.expect(`
            if t.text == "."
                && toks.get(i + 1).is_some_and(|n| {
                    n.kind == TokKind::Ident && (n.text == "unwrap" || n.text == "expect")
                })
                && toks.get(i + 2).is_some_and(|n| n.text == "(")
            {
                let name = &toks[i + 1].text;
                let closes = if name == "unwrap" {
                    toks.get(i + 3).is_some_and(|n| n.text == ")")
                } else {
                    true
                };
                if closes {
                    self.emit(
                        findings,
                        Rule::P1,
                        toks[i + 1].line,
                        format!(
                            "`.{name}(…)` can panic in library code; thread a `Result` \
                             through, or justify with `// lint: allow(P1, reason)`"
                        ),
                    );
                }
            }
            // Constant slice index `foo[0]`.
            if t.text == "["
                && i > 0
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::NumLit && !n.is_float())
                && toks.get(i + 2).is_some_and(|n| n.text == "]")
            {
                let prev = &toks[i - 1];
                let postfix = match prev.kind {
                    TokKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if postfix {
                    self.emit(
                        findings,
                        Rule::P1,
                        t.line,
                        format!(
                            "constant index `[{}]` panics when the slice is shorter; \
                             use `.get({})`/`.first()` or justify with \
                             `// lint: allow(P1, reason)`",
                            toks[i + 1].text,
                            toks[i + 1].text
                        ),
                    );
                }
            }
        }
    }

    fn rule_f1(&self, findings: &mut Vec<Finding>) {
        let toks = self.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !self.lib_code(t.line) {
                continue;
            }
            // `.partial_cmp( … ).unwrap()` / `.expect(`
            if t.text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "partial_cmp")
                && toks.get(i + 2).is_some_and(|n| n.text == "(")
            {
                if let Some(close) = matching(toks, i + 2, "(", ")") {
                    if toks.get(close + 1).is_some_and(|n| n.text == ".")
                        && toks
                            .get(close + 2)
                            .is_some_and(|n| n.text == "unwrap" || n.text == "expect")
                    {
                        self.emit(
                            findings,
                            Rule::F1,
                            toks[i + 1].line,
                            "`partial_cmp(…).unwrap()` panics on NaN; use \
                             `f64::total_cmp` or the total-order helpers in \
                             `mvcom_types::latency`"
                                .to_string(),
                        );
                    }
                }
            }
            // `x == 1.5` / `1.5 != x`: exact float-literal comparison.
            if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
                let float_neighbor = (i > 0 && toks[i - 1].is_float())
                    || toks.get(i + 1).is_some_and(Token::is_float);
                if float_neighbor {
                    self.emit(
                        findings,
                        Rule::F1,
                        t.line,
                        format!(
                            "exact `{}` against a float literal is a rounding hazard; \
                             compare via `mvcom_types::latency::approx_eq` or restructure",
                            t.text
                        ),
                    );
                }
            }
        }
    }

    fn rule_t1(&self, findings: &mut Vec<Finding>) {
        let toks = self.tokens;
        for i in 0..toks.len() {
            if toks[i].text == "#"
                && toks.get(i + 1).is_some_and(|n| n.text == "[")
                && toks.get(i + 2).is_some_and(|n| n.text == "ignore")
            {
                match toks.get(i + 3) {
                    Some(n) if n.text == "]" => {
                        self.emit(
                            findings,
                            Rule::T1,
                            toks[i + 2].line,
                            "`#[ignore]` without a reason; write \
                             `#[ignore = \"why this test is skipped\"]`"
                                .to_string(),
                        );
                    }
                    Some(n) if n.text == "=" => {} // carries a reason
                    _ => {}
                }
            }
        }
    }

    /// U1: every crate root must open with `#![forbid(unsafe_code)]`.
    fn rule_u1(&self, findings: &mut Vec<Finding>) {
        if !is_crate_root(self.rel_path) {
            return;
        }
        let has_forbid = self.tokens.windows(8).any(|w| {
            matches!(
                w,
                [hash, bang, open, forbid, paren, what, close, shut]
                    if hash.text == "#"
                        && bang.text == "!"
                        && open.text == "["
                        && forbid.text == "forbid"
                        && paren.text == "("
                        && what.text == "unsafe_code"
                        && close.text == ")"
                        && shut.text == "]"
            )
        });
        if !has_forbid {
            self.emit(
                findings,
                Rule::U1,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`; every workspace \
                 compilation unit forbids unsafe so the determinism argument \
                 never crosses an unchecked boundary"
                    .to_string(),
            );
        }
    }
}

/// Atomic orderings the C3 rule treats as needing a written argument.
const WEAK_ORDERINGS: [&str; 4] = ["Relaxed", "Acquire", "Release", "AcqRel"];

/// `Obs` emission methods that must not run against a shared handle
/// inside the parallel region. Metric updates (`incr`/`add`/`set_gauge`)
/// are commutative and deliberately absent.
const EMIT_METHODS: [&str; 3] = ["emit", "span", "replay"];

/// Constructions that make a unit's emissions safe: the handle is either
/// task-local or the deferred worker end of the replay buffer.
const SANCTIONED_OBS: [&str; 4] = ["memory", "writer", "off", "to_file"];

/// Identifiers that denote a worker count or index; comparing or
/// branching on one inside the region makes behavior thread-dependent.
const THREAD_IDENTS: [&str; 14] = [
    "threads",
    "n_threads",
    "num_threads",
    "thread_count",
    "thread_id",
    "thread_idx",
    "workers",
    "n_workers",
    "num_workers",
    "worker_count",
    "worker_id",
    "worker_idx",
    "worker_index",
    "tid",
];

/// Assignment operators (for the C2 captured-mutation check).
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Comparison operators (for the C4 thread-count-branching check).
const CMP_OPS: [&str; 6] = ["==", "!=", "<", ">", "<=", ">="];

/// Scanner for one parallel-region unit of one file.
struct RegionScan<'a> {
    ctx: &'a CrateFile<'a>,
    unit: &'a Unit,
}

impl RegionScan<'_> {
    fn toks(&self) -> &[Token] {
        &self.ctx.lexed.tokens
    }

    fn lib_code(&self, line: u32) -> bool {
        !self.ctx.test_lines.contains(&line)
    }

    fn emit(&self, findings: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
        findings.push(Finding {
            rule,
            file: self.ctx.rel.to_string(),
            line,
            message,
        });
    }

    fn range(&self) -> std::ops::RangeInclusive<usize> {
        self.unit.start..=self.unit.end.min(self.toks().len().saturating_sub(1))
    }

    /// C1: `Obs` emission on a handle that was not constructed in this
    /// body. A body that builds its own handle (`obs.deferred()`,
    /// `Obs::memory()`, …) owns its event ordering and is exempt.
    fn rule_c1(&self, findings: &mut Vec<Finding>) {
        let toks = self.toks();
        let sanctioned = self.range().any(|i| {
            let t = &toks[i];
            (t.text == "deferred"
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "("))
                || (t.text == "Obs"
                    && toks.get(i + 1).is_some_and(|n| n.text == "::")
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| SANCTIONED_OBS.contains(&n.text.as_str())))
        });
        if sanctioned {
            return;
        }
        for i in self.range() {
            let t = &toks[i];
            if t.text == "."
                && toks
                    .get(i + 1)
                    .is_some_and(|n| EMIT_METHODS.contains(&n.text.as_str()))
                && toks.get(i + 2).is_some_and(|n| n.text == "(")
                && self.lib_code(toks[i + 1].line)
            {
                self.emit(
                    findings,
                    Rule::C1,
                    toks[i + 1].line,
                    format!(
                        "`.{}(…)` on a shared `Obs` handle inside the parallel region \
                         races the event sequence; emit through `Obs::deferred()` and \
                         replay after the join, or justify with `// lint: allow(C1, reason)`",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }

    /// C2: shared mutable state inside the region — non-`Sync` interior
    /// mutability anywhere, and mutation of captured variables inside
    /// closure bodies.
    fn rule_c2(&self, findings: &mut Vec<Finding>) {
        let toks = self.toks();
        for i in self.range() {
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "Rc" | "RefCell" | "Cell" | "UnsafeCell")
                && self.lib_code(t.line)
            {
                self.emit(
                    findings,
                    Rule::C2,
                    t.line,
                    format!(
                        "`{}` inside the parallel region aliases unsynchronized \
                         mutable state; use `Arc` + `Mutex`/atomics or keep the \
                         value task-local",
                        t.text
                    ),
                );
            }
        }
        // Captured-mutation check: only closures capture.
        if self.unit.params.is_none() {
            return;
        }
        let locals = self.closure_locals();
        for i in self.range() {
            let t = &toks[i];
            if t.kind != TokKind::Punct || !ASSIGN_OPS.contains(&t.text.as_str()) || i == 0 {
                continue;
            }
            let prev = &toks[i - 1];
            if prev.kind != TokKind::Ident || prev.text == "self" {
                continue;
            }
            if i >= 2 && toks[i - 2].text == "." {
                continue; // field assignment; the receiver decides, not the name
            }
            if locals.contains(prev.text.as_str()) || !self.lib_code(t.line) {
                continue;
            }
            self.emit(
                findings,
                Rule::C2,
                t.line,
                format!(
                    "`{}` is mutated inside a spawned closure but declared outside \
                     it; the merged value depends on worker interleaving — move it \
                     into the task result or a per-task slot",
                    prev.text
                ),
            );
        }
    }

    /// Identifiers declared inside the closure (params, `let`, `for`),
    /// over-approximated: type names in patterns are harmless extras.
    fn closure_locals(&self) -> BTreeSet<&str> {
        let toks = self.toks();
        let mut locals = BTreeSet::new();
        if let Some((ps, pe)) = self.unit.params {
            for t in &toks[ps..=pe.min(toks.len().saturating_sub(1))] {
                if t.kind == TokKind::Ident {
                    locals.insert(t.text.as_str());
                }
            }
        }
        let mut i = self.unit.start;
        let end = self.unit.end.min(toks.len().saturating_sub(1));
        while i <= end {
            let t = &toks[i];
            if t.kind == TokKind::Ident && (t.text == "let" || t.text == "for") {
                let stoppers: &[&str] = if t.text == "let" {
                    &["=", ";"]
                } else {
                    &["in"]
                };
                let mut j = i + 1;
                while j <= end {
                    let tj = &toks[j];
                    if stoppers.contains(&tj.text.as_str()) {
                        break;
                    }
                    if tj.kind == TokKind::Ident {
                        locals.insert(tj.text.as_str());
                    }
                    j += 1;
                }
                i = j;
            }
            i += 1;
        }
        locals
    }

    /// C3: atomic orderings weaker than `SeqCst`, and acquisition of
    /// locks on two distinct receivers within one unit (no canonical
    /// order is visible to the analyzer — document one).
    fn rule_c3(&self, findings: &mut Vec<Finding>) {
        let toks = self.toks();
        for i in self.range() {
            let t = &toks[i];
            if t.text == "Ordering"
                && toks.get(i + 1).is_some_and(|n| n.text == "::")
                && toks
                    .get(i + 2)
                    .is_some_and(|n| WEAK_ORDERINGS.contains(&n.text.as_str()))
                && self.lib_code(toks[i + 2].line)
            {
                self.emit(
                    findings,
                    Rule::C3,
                    toks[i + 2].line,
                    format!(
                        "`Ordering::{}` is weaker than `SeqCst` inside the parallel \
                         region; state why the protocol tolerates the relaxation \
                         with `// lint: allow(C3, reason)` or upgrade the ordering",
                        toks[i + 2].text
                    ),
                );
            }
        }
        let mut receivers: Vec<(&str, u32)> = Vec::new();
        for i in self.range() {
            let t = &toks[i];
            if t.text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "lock")
                && toks.get(i + 2).is_some_and(|n| n.text == "(")
                && self.lib_code(toks[i + 1].line)
            {
                if let Some(base) = receiver_base(toks, i) {
                    if !receivers.iter().any(|(n, _)| *n == base) {
                        receivers.push((base, toks[i + 1].line));
                    }
                }
            }
        }
        if let Some(&(_, second_line)) = receivers.get(1) {
            let names: Vec<&str> = receivers.iter().map(|(n, _)| *n).collect();
            self.emit(
                findings,
                Rule::C3,
                second_line,
                format!(
                    "locks on `{}` are acquired in one parallel unit with no \
                     canonical order the analyzer can see; document the order (or \
                     that the guards never overlap) with `// lint: allow(C3, reason)`",
                    names.join("`, `")
                ),
            );
        }
    }

    /// C4: comparing/branching on a thread count or worker index inside
    /// the region. The partitioner (the fn that spawns) sits outside the
    /// region by construction, so its `workers <= 1` fast paths pass.
    fn rule_c4(&self, findings: &mut Vec<Finding>) {
        let toks = self.toks();
        for i in self.range() {
            let t = &toks[i];
            if t.kind == TokKind::Punct && CMP_OPS.contains(&t.text.as_str()) {
                let neighbor = [i.checked_sub(1), Some(i + 1)]
                    .into_iter()
                    .flatten()
                    .filter_map(|j| toks.get(j))
                    .find(|n| n.kind == TokKind::Ident && THREAD_IDENTS.contains(&n.text.as_str()));
                if let Some(n) = neighbor {
                    if self.lib_code(t.line) {
                        self.emit(
                            findings,
                            Rule::C4,
                            t.line,
                            format!(
                                "comparison against `{}` inside the parallel region \
                                 makes behavior depend on `--threads`; only the \
                                 partitioner may consult the worker count",
                                n.text
                            ),
                        );
                    }
                }
            }
            // Reading the global thread count from worker code.
            if t.kind == TokKind::Ident
                && (t.text == "threads" || t.text == "resolve_threads")
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
                && (i == 0 || toks[i - 1].text != "fn")
                && self.lib_code(t.line)
            {
                self.emit(
                    findings,
                    Rule::C4,
                    t.line,
                    format!(
                        "`{}()` reads the global worker count inside the parallel \
                         region; thread-dependent values must stay in the partitioner",
                        t.text
                    ),
                );
            }
        }
    }
}

/// The base identifier of a method receiver, walking back over `.field`
/// chains and `[…]`/`(…)` groups: `self.slots[i].lock()` → `self`.
/// `None` when the receiver is not rooted in a plain identifier.
fn receiver_base(toks: &[Token], dot: usize) -> Option<&str> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match toks[j].text.as_str() {
            "]" => j = rmatching(toks, j, "[", "]")?.checked_sub(1)?,
            ")" => j = rmatching(toks, j, "(", ")")?.checked_sub(1)?,
            _ => {
                if toks[j].kind != TokKind::Ident {
                    return None;
                }
                // `a.b[i].lock()`: keep walking the field chain left.
                match j.checked_sub(1) {
                    Some(p) if toks[p].text == "." => {
                        j = p.checked_sub(1)?;
                    }
                    _ => return Some(&toks[j].text),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_flagged_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("crates/simnet/src/x.rs", src)),
            [Rule::D1]
        );
        assert!(lint_source("crates/pbft/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_mod_is_exempt_from_p1_but_file_paths_matter() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let found = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::P1]);
        assert_eq!(found[0].line, 1);
        assert!(lint_source("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn annotation_silences_and_requires_reason() {
        let ok = "// lint: allow(P1, length checked above)\nlet v = x.unwrap();\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
        let trailing = "let v = x.unwrap(); // lint: allow(P1, length checked above)\n";
        assert!(lint_source("crates/core/src/x.rs", trailing).is_empty());
        let bad = "// lint: allow(P1)\nlet v = x.unwrap();\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", bad)),
            [Rule::A0, Rule::P1]
        );
    }

    #[test]
    fn float_equality_and_partial_cmp() {
        let src = "fn f() { if x == 1.5 {} a.partial_cmp(&b).unwrap(); }\n";
        // The `.unwrap()` also trips P1 — both rules point at the same fix.
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            [Rule::P1, Rule::F1, Rule::F1]
        );
        // A plain partial_cmp without unwrap is fine.
        let ok = "fn f() -> Option<Ordering> { a.partial_cmp(&b) }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn bare_ignore_flagged_with_reason_ok() {
        let src = "#[ignore]\nfn a() {}\n#[ignore = \"slow\"]\nfn b() {}\n";
        let found = lint_source("crates/core/tests/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::T1]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn constant_index_heuristics() {
        let flagged = "fn f() { let x = items[0]; }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", flagged)),
            [Rule::P1]
        );
        // Array literals and macro args are not index expressions.
        let ok = "fn f() { let a = [0]; for _ in [1] {} let v = vec![0]; }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn wall_clock_flagged_everywhere_but_bench() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/pbft/src/x.rs", src)),
            [Rule::D1]
        );
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        // Also applies inside tests/ paths: wall-clock tests flake.
        assert_eq!(rules_of(&lint_source("tests/x.rs", src)), [Rule::D1]);
    }

    #[test]
    fn strings_and_doc_comments_do_not_trip_rules() {
        let src = "/// let x = y.unwrap();\nfn f() { let s = \"HashMap.unwrap()\"; }\n";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }

    #[test]
    fn c1_direct_emission_in_region_flagged() {
        let src = "\
fn worker_body(obs: &Obs) { obs.emit(\"k\", 1.0, &[]); }
fn fan_out(obs: &Obs) {
    crossbeam::scope(|s| { s.spawn(|_| worker_body(obs)); });
}
";
        let found = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::C1]);
        assert_eq!(found[0].line, 1);
        // The same emission outside any spawn is fine.
        let serial = "fn worker_body(obs: &Obs) { obs.emit(\"k\", 1.0, &[]); }\n";
        assert!(lint_source("crates/core/src/x.rs", serial).is_empty());
    }

    #[test]
    fn c1_exempts_bodies_that_build_their_own_handle() {
        let src = "\
fn fan_out(obs: &Obs) {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            let (worker, capture) = obs.deferred();
            worker.emit(\"k\", 1.0, &[]);
        });
    });
}
";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn c2_interior_mutability_and_captured_mutation() {
        let src = "\
fn fan_out() {
    let mut merged = 0u64;
    crossbeam::scope(|s| {
        s.spawn(move |_| {
            let cell = RefCell::new(0u64);
            merged += 1;
        });
    });
}
";
        let found = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::C2, Rule::C2]);
        assert_eq!((found[0].line, found[1].line), (5, 6));
        // Task-local state is fine.
        let ok = "\
fn fan_out() {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            let mut local = 0u64;
            local += 1;
        });
    });
}
";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn c3_weak_ordering_and_lock_pairs() {
        let src = "\
fn fan_out(stop: &AtomicBool, a: &Mutex<u64>, b: &Mutex<u64>) {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            stop.store(true, Ordering::Relaxed);
            let x = a.lock();
            let y = b.lock();
        });
    });
}
";
        let found = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::C3, Rule::C3]);
        assert_eq!((found[0].line, found[1].line), (4, 6));
        // SeqCst + a single lock receiver is clean.
        let ok = "\
fn fan_out(stop: &AtomicBool, a: &Mutex<u64>) {
    crossbeam::scope(|s| {
        s.spawn(|_| {
            stop.store(true, Ordering::SeqCst);
            let x = a.lock();
            let y = a.lock();
        });
    });
}
";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn c4_thread_count_branching() {
        let src = "\
fn fan_out(workers: usize) {
    if workers <= 1 { return; }
    crossbeam::scope(|s| {
        s.spawn(move |_| {
            let wide = workers > 2;
        });
    });
}
";
        let found = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::C4]);
        // Line 2's partitioner fast path is outside the region; only the
        // in-closure comparison on line 5 fires.
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn c_rules_ignore_test_paths() {
        let src = "\
fn fan_out() {
    let mut merged = 0u64;
    crossbeam::scope(|s| { s.spawn(move |_| { merged += 1; }); });
}
";
        assert!(lint_source("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn w1_reports_stale_allow() {
        let stale = "// lint: allow(P1, nothing here can panic)\nfn f() { let x = 1; }\n";
        let found = lint_source("crates/core/src/x.rs", stale);
        assert_eq!(rules_of(&found), [Rule::W1]);
        assert_eq!(found[0].line, 1);
        // A used allow is not stale.
        let used = "// lint: allow(P1, length checked above)\nfn f() { x.unwrap(); }\n";
        assert!(lint_source("crates/core/src/x.rs", used).is_empty());
    }

    #[test]
    fn u1_requires_forbid_in_crate_roots_only() {
        let bare = "pub fn noop() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/foo/src/lib.rs", bare)),
            [Rule::U1]
        );
        assert_eq!(rules_of(&lint_source("src/bin/mvcom.rs", bare)), [Rule::U1]);
        assert!(lint_source("crates/foo/src/util.rs", bare).is_empty());
        let good = "#![forbid(unsafe_code)]\npub fn noop() {}\n";
        assert!(lint_source("crates/foo/src/lib.rs", good).is_empty());
    }

    #[test]
    fn lint_crate_resolves_calls_across_files() {
        let worker = "pub fn worker_body(obs: &Obs) { obs.emit(\"k\", 1.0, &[]); }\n";
        let spawner = "\
use super::worker_body;
pub fn fan_out(obs: &Obs) {
    crossbeam::scope(|s| { s.spawn(|_| worker_body(obs)); });
}
";
        let found = lint_crate(&[
            ("crates/core/src/a.rs", worker),
            ("crates/core/src/b.rs", spawner),
        ]);
        assert_eq!(rules_of(&found), [Rule::C1]);
        assert_eq!(found[0].file, "crates/core/src/a.rs");
        // Linted alone, the worker file has no region and stays clean.
        assert!(lint_source("crates/core/src/a.rs", worker).is_empty());
    }

    #[test]
    fn rule_selection_parses() {
        let sel = RuleSelection::parse("C1, C3,W1").expect("valid list");
        assert!(sel.contains(Rule::C1) && sel.contains(Rule::C3) && sel.contains(Rule::W1));
        assert!(!sel.contains(Rule::P1));
        assert!(RuleSelection::parse("all").expect("all").contains(Rule::U1));
        assert!(RuleSelection::parse("Z9").is_err());
    }
}
