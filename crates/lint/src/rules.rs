//! The lint rules and the annotation grammar.
//!
//! Four domain rules guard the invariants MVCom's correctness argument
//! leans on (see DESIGN.md §7):
//!
//! | rule | guards                                                        |
//! |------|---------------------------------------------------------------|
//! | D1   | determinism: no seed-unstable containers in deterministic     |
//! |      | crates; no wall-clock / ambient RNG outside `crates/bench`    |
//! | P1   | panic-freedom: no `unwrap`/`expect`/constant index in         |
//! |      | non-test library code without a justification annotation      |
//! | F1   | float ordering: no `partial_cmp().unwrap()`, no `==`/`!=`     |
//! |      | against float literals — use the total-order helpers          |
//! | T1   | test hygiene: `#[ignore]` must carry a reason string          |
//!
//! A violation is silenced inline with
//!
//! ```text
//! // lint: allow(P1, reason why the panic is unreachable)
//! ```
//!
//! on the offending line or the line directly above it. The reason is
//! mandatory; a malformed annotation is itself reported (rule `A0`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::lexer::{lex, Comment, TokKind, Token};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Determinism: order-stable containers, no wall-clock/ambient RNG.
    D1,
    /// Panic-freedom in non-test library code.
    P1,
    /// Float-ordering hazards.
    F1,
    /// Test hygiene.
    T1,
    /// Malformed `lint:` annotation.
    A0,
}

impl Rule {
    fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "P1" => Some(Rule::P1),
            "F1" => Some(Rule::F1),
            "T1" => Some(Rule::T1),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Crates whose library code must iterate containers in seed-stable order
/// (they implement the deterministic virtual-time simulation the paper's
/// Theorem 1 / Theorem 2 experiments replay).
const DETERMINISTIC_CRATES: [&str; 3] = ["simnet", "elastico", "core"];

/// Keywords that can legally precede an array-literal `[`; an index
/// expression can only follow an identifier, `)`, or `]`, so these
/// exclude `for x in [0] {}`-style false positives.
const NON_POSTFIX_KEYWORDS: [&str; 14] = [
    "in", "mut", "return", "break", "else", "match", "if", "while", "for", "loop", "move", "ref",
    "let", "const",
];

/// What kind of file a path denotes, derived from workspace-relative
/// path components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileClass<'a> {
    /// `crates/<name>/…` → `<name>`; root `src/…`, `tests/…`, … → `mvcom`.
    krate: &'a str,
    /// Under a `tests/`, `benches/`, or `examples/` directory: P1/F1 and
    /// the D1 container rule do not apply (the D1 wall-clock rule still
    /// does — flaky tests are still flaky).
    test_path: bool,
}

fn classify(rel_path: &str) -> FileClass<'_> {
    let krate = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("mvcom");
    let test_path = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    FileClass { krate, test_path }
}

/// Lints one file's source. `rel_path` must be workspace-relative with
/// `/` separators (e.g. `crates/simnet/src/gossip.rs`); it selects which
/// rules apply.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let out = lex(source);
    let test_lines = test_region_lines(&out.tokens);
    let (allowed, mut findings) = parse_annotations(rel_path, &out.comments);

    let ctx = Scan {
        rel_path,
        class,
        tokens: &out.tokens,
        test_lines: &test_lines,
    };
    ctx.rule_d1(&mut findings);
    ctx.rule_p1(&mut findings);
    ctx.rule_f1(&mut findings);
    ctx.rule_t1(&mut findings);

    findings.retain(|f| {
        f.rule == Rule::A0
            || !allowed
                .get(&f.line)
                .is_some_and(|rules| rules.contains(&f.rule))
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lines covered by `#[cfg(test)]` items (usually the trailing `mod tests`).
fn test_region_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        // `#![cfg(test)]` (inner attribute): the whole file is test code.
        let inner = tokens.get(i + 1).is_some_and(|t| t.text == "!");
        let open = i + if inner { 2 } else { 1 };
        if tokens.get(open).is_none_or(|t| t.text != "[") {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, "[", "]") else {
            break;
        };
        let is_cfg_test = tokens[open + 1..close].windows(4).any(|w| {
            matches!(w, [a, b, c, d]
                if a.text == "cfg" && b.text == "(" && c.text == "test" && d.text == ")")
        });
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        if inner {
            if let (Some(first), Some(last)) = (tokens.first(), tokens.last()) {
                for l in first.line..=last.line {
                    lines.insert(l);
                }
            }
            return lines;
        }
        // Skip any further outer attributes, then swallow one item: up to a
        // top-level `;`, or a `{ … }` body when one opens first.
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.text == "#")
            && tokens.get(j + 1).is_some_and(|t| t.text == "[")
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let start_line = tokens[i].line;
        let mut depth_paren = 0i32;
        let mut end = None;
        while let Some(t) = tokens.get(j) {
            match t.text.as_str() {
                "(" | "[" => depth_paren += 1,
                ")" | "]" => depth_paren -= 1,
                ";" if depth_paren == 0 => {
                    end = Some(j);
                    break;
                }
                "{" if depth_paren == 0 => {
                    end = matching(tokens, j, "{", "}");
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = end.unwrap_or(tokens.len() - 1);
        for l in start_line..=tokens[end].line {
            lines.insert(l);
        }
        i = end + 1;
    }
    lines
}

/// Index of the token closing the bracket opened at `open`.
fn matching(tokens: &[Token], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == op {
                depth += 1;
            } else if t.text == cl {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

/// Parses `lint: allow(P1, reason)`-style annotations out of comments.
///
/// Only comments containing an `allow(` directly after `lint:` are
/// treated as annotation attempts; prose that merely mentions the word
/// is ignored.
/// Returns the per-line allow map (an annotation covers its own lines and
/// the line immediately after it) and `A0` findings for malformed ones.
fn parse_annotations(
    rel_path: &str,
    comments: &[Comment],
) -> (BTreeMap<u32, BTreeSet<Rule>>, Vec<Finding>) {
    let mut allowed: BTreeMap<u32, BTreeSet<Rule>> = BTreeMap::new();
    let mut findings = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint:") {
            rest = &rest[at + "lint:".len()..];
            let body = rest.trim_start();
            if !body.starts_with("allow(") {
                continue;
            }
            let parsed = body
                .strip_prefix("allow(")
                .and_then(|b| b.split_once(')'))
                .and_then(|(inside, _)| inside.split_once(','))
                .and_then(|(rule, reason)| {
                    let rule = Rule::parse(rule.trim())?;
                    let reason = reason.trim();
                    (!reason.is_empty()).then_some(rule)
                });
            match parsed {
                Some(rule) => {
                    for l in c.line..=c.end_line + 1 {
                        allowed.entry(l).or_default().insert(rule);
                    }
                }
                None => findings.push(Finding {
                    rule: Rule::A0,
                    file: rel_path.to_string(),
                    line: c.line,
                    message: "malformed lint annotation; expected \
                              `lint: allow(RULE, reason)` with a non-empty reason"
                        .to_string(),
                }),
            }
        }
    }
    (allowed, findings)
}

struct Scan<'a> {
    rel_path: &'a str,
    class: FileClass<'a>,
    tokens: &'a [Token],
    test_lines: &'a BTreeSet<u32>,
}

impl Scan<'_> {
    fn emit(&self, findings: &mut Vec<Finding>, rule: Rule, line: u32, message: String) {
        findings.push(Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            message,
        });
    }

    /// Library (non-test) code at `line`?
    fn lib_code(&self, line: u32) -> bool {
        !self.class.test_path && !self.test_lines.contains(&line)
    }

    fn rule_d1(&self, findings: &mut Vec<Finding>) {
        let deterministic = DETERMINISTIC_CRATES.contains(&self.class.krate);
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "HashMap" | "HashSet" if deterministic && self.lib_code(t.line) => {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        format!(
                            "`{}` iterates in seed-unstable order inside a deterministic \
                             crate; use `BTreeMap`/`BTreeSet` or an order-stable wrapper",
                            t.text
                        ),
                    );
                }
                "Instant"
                    if self.class.krate != "bench"
                        && self.tokens.get(i + 1).is_some_and(|n| n.text == "::")
                        && self.tokens.get(i + 2).is_some_and(|n| n.text == "now") =>
                {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        "`Instant::now` reads the wall clock; deterministic code must \
                         derive time from `SimTime` (only `crates/bench` may measure)"
                            .to_string(),
                    );
                }
                "SystemTime" if self.class.krate != "bench" => {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        "`SystemTime` reads the wall clock; deterministic code must \
                         derive time from `SimTime` (only `crates/bench` may measure)"
                            .to_string(),
                    );
                }
                "thread_rng" if self.class.krate != "bench" => {
                    self.emit(
                        findings,
                        Rule::D1,
                        t.line,
                        "`thread_rng` is ambient, unseeded randomness; fork a stream \
                         from `mvcom_simnet::rng::master(seed)` instead"
                            .to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    fn rule_p1(&self, findings: &mut Vec<Finding>) {
        let toks = self.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !self.lib_code(t.line) {
                continue;
            }
            // `.unwrap()` / `.expect(`
            if t.text == "."
                && toks.get(i + 1).is_some_and(|n| {
                    n.kind == TokKind::Ident && (n.text == "unwrap" || n.text == "expect")
                })
                && toks.get(i + 2).is_some_and(|n| n.text == "(")
            {
                let name = &toks[i + 1].text;
                let closes = if name == "unwrap" {
                    toks.get(i + 3).is_some_and(|n| n.text == ")")
                } else {
                    true
                };
                if closes {
                    self.emit(
                        findings,
                        Rule::P1,
                        toks[i + 1].line,
                        format!(
                            "`.{name}(…)` can panic in library code; thread a `Result` \
                             through, or justify with `// lint: allow(P1, reason)`"
                        ),
                    );
                }
            }
            // Constant slice index `foo[0]`.
            if t.text == "["
                && i > 0
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::NumLit && !n.is_float())
                && toks.get(i + 2).is_some_and(|n| n.text == "]")
            {
                let prev = &toks[i - 1];
                let postfix = match prev.kind {
                    TokKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if postfix {
                    self.emit(
                        findings,
                        Rule::P1,
                        t.line,
                        format!(
                            "constant index `[{}]` panics when the slice is shorter; \
                             use `.get({})`/`.first()` or justify with \
                             `// lint: allow(P1, reason)`",
                            toks[i + 1].text,
                            toks[i + 1].text
                        ),
                    );
                }
            }
        }
    }

    fn rule_f1(&self, findings: &mut Vec<Finding>) {
        let toks = self.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !self.lib_code(t.line) {
                continue;
            }
            // `.partial_cmp( … ).unwrap()` / `.expect(`
            if t.text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "partial_cmp")
                && toks.get(i + 2).is_some_and(|n| n.text == "(")
            {
                if let Some(close) = matching(toks, i + 2, "(", ")") {
                    if toks.get(close + 1).is_some_and(|n| n.text == ".")
                        && toks
                            .get(close + 2)
                            .is_some_and(|n| n.text == "unwrap" || n.text == "expect")
                    {
                        self.emit(
                            findings,
                            Rule::F1,
                            toks[i + 1].line,
                            "`partial_cmp(…).unwrap()` panics on NaN; use \
                             `f64::total_cmp` or the total-order helpers in \
                             `mvcom_types::latency`"
                                .to_string(),
                        );
                    }
                }
            }
            // `x == 1.5` / `1.5 != x`: exact float-literal comparison.
            if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
                let float_neighbor = (i > 0 && toks[i - 1].is_float())
                    || toks.get(i + 1).is_some_and(Token::is_float);
                if float_neighbor {
                    self.emit(
                        findings,
                        Rule::F1,
                        t.line,
                        format!(
                            "exact `{}` against a float literal is a rounding hazard; \
                             compare via `mvcom_types::latency::approx_eq` or restructure",
                            t.text
                        ),
                    );
                }
            }
        }
    }

    fn rule_t1(&self, findings: &mut Vec<Finding>) {
        let toks = self.tokens;
        for i in 0..toks.len() {
            if toks[i].text == "#"
                && toks.get(i + 1).is_some_and(|n| n.text == "[")
                && toks.get(i + 2).is_some_and(|n| n.text == "ignore")
            {
                match toks.get(i + 3) {
                    Some(n) if n.text == "]" => {
                        self.emit(
                            findings,
                            Rule::T1,
                            toks[i + 2].line,
                            "`#[ignore]` without a reason; write \
                             `#[ignore = \"why this test is skipped\"]`"
                                .to_string(),
                        );
                    }
                    Some(n) if n.text == "=" => {} // carries a reason
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_flagged_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("crates/simnet/src/x.rs", src)),
            [Rule::D1]
        );
        assert!(lint_source("crates/pbft/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_mod_is_exempt_from_p1_but_file_paths_matter() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let found = lint_source("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::P1]);
        assert_eq!(found[0].line, 1);
        assert!(lint_source("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn annotation_silences_and_requires_reason() {
        let ok = "// lint: allow(P1, length checked above)\nlet v = x.unwrap();\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
        let trailing = "let v = x.unwrap(); // lint: allow(P1, length checked above)\n";
        assert!(lint_source("crates/core/src/x.rs", trailing).is_empty());
        let bad = "// lint: allow(P1)\nlet v = x.unwrap();\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", bad)),
            [Rule::A0, Rule::P1]
        );
    }

    #[test]
    fn float_equality_and_partial_cmp() {
        let src = "fn f() { if x == 1.5 {} a.partial_cmp(&b).unwrap(); }\n";
        // The `.unwrap()` also trips P1 — both rules point at the same fix.
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", src)),
            [Rule::P1, Rule::F1, Rule::F1]
        );
        // A plain partial_cmp without unwrap is fine.
        let ok = "fn f() -> Option<Ordering> { a.partial_cmp(&b) }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn bare_ignore_flagged_with_reason_ok() {
        let src = "#[ignore]\nfn a() {}\n#[ignore = \"slow\"]\nfn b() {}\n";
        let found = lint_source("crates/core/tests/x.rs", src);
        assert_eq!(rules_of(&found), [Rule::T1]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn constant_index_heuristics() {
        let flagged = "fn f() { let x = items[0]; }\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/x.rs", flagged)),
            [Rule::P1]
        );
        // Array literals and macro args are not index expressions.
        let ok = "fn f() { let a = [0]; for _ in [1] {} let v = vec![0]; }\n";
        assert!(lint_source("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn wall_clock_flagged_everywhere_but_bench() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&lint_source("crates/pbft/src/x.rs", src)),
            [Rule::D1]
        );
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
        // Also applies inside tests/ paths: wall-clock tests flake.
        assert_eq!(rules_of(&lint_source("tests/x.rs", src)), [Rule::D1]);
    }

    #[test]
    fn strings_and_doc_comments_do_not_trip_rules() {
        let src = "/// let x = y.unwrap();\nfn f() { let s = \"HashMap.unwrap()\"; }\n";
        assert!(lint_source("crates/simnet/src/x.rs", src).is_empty());
    }
}
