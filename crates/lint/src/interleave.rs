//! Exhaustive interleaving checker for the version-stamped RESET bus.
//!
//! `mvcom_core::se::ParallelRunner` coordinates its Γ replica threads
//! through a `ResetBus`: a single atomic version counter. A replica that
//! improves the global best *polls* the bus (adopting the freshest
//! version) and then *broadcasts* a RESET by compare-and-swapping
//! `version: observed → observed + 1`; every replica applies a RESET at
//! most once per version when its next poll observes a change.
//!
//! The runner's correctness claim is scheduling-independent:
//!
//! * **no lost reset** — every successful broadcast advances the version
//!   by exactly one, so `version` counts broadcasts exactly;
//! * **no stale-version-wins** — a broadcast stamped against a superseded
//!   version never advances the bus (the CAS fails and the signal is
//!   dropped as stale);
//! * **at-most-once application** — a replica never applies the same
//!   version twice, and its view only moves forward;
//! * **quiescent delivery** — once broadcasts stop, one more poll brings
//!   every replica to the final version.
//!
//! This module *proves* those properties for a bounded instance (default:
//! 3 replica threads × 2 broadcast rounds, every broadcast optionally
//! skipped). It is the original PR 4 checker ported — invariants and
//! program structure unchanged — onto the [`crate::model`] DSL, and doubles
//! as that DSL's worked example (see DESIGN.md §12).
//!
//! To show the checker has teeth, [`BusModel::SplitRmw`] models the
//! classic bug the CAS prevents — a broadcast implemented as a separate
//! load and store — and the DFS produces a concrete lost-reset schedule
//! for it.

use crate::model::{self, InvariantError, Model};

pub use crate::model::Violation;

/// Which RESET-bus implementation to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusModel {
    /// The shipped protocol: broadcast is `CAS(observed, observed + 1)`.
    VersionCas,
    /// A deliberately broken bus: broadcast is a non-atomic
    /// read-modify-write (`load` then `store loaded + 1`). Two racing
    /// broadcasts both "succeed" but only advance the version once — a
    /// lost reset the checker must detect.
    SplitRmw,
}

/// Bounds of the exploration.
#[derive(Debug, Clone, Copy)]
pub struct InterleaveConfig {
    /// Modeled replica threads (max 4 — beyond that the space explodes
    /// without telling us anything new).
    pub threads: usize,
    /// Broadcast rounds per thread (each round: poll, broadcast, poll).
    pub rounds: usize,
    /// Bus implementation under test.
    pub model: BusModel,
}

impl Default for InterleaveConfig {
    fn default() -> InterleaveConfig {
        InterleaveConfig {
            threads: 3,
            rounds: 2,
            model: BusModel::VersionCas,
        }
    }
}

/// One modeled atomic step of a replica. Mirrors `run_replica`: each
/// round polls for the freshest version, then (maybe) broadcasts stamped
/// against it, and ends with the round's convergence-clock poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `ResetBus::poll`: adopt the current version.
    Poll,
    /// `ResetBus::broadcast_from(last_seen)` — explored both as executed
    /// and as skipped (a replica only broadcasts when it improved).
    Broadcast,
    /// First half of the broken [`BusModel::SplitRmw`] broadcast.
    RmwLoad,
    /// Second half of the broken broadcast: blind `store(loaded + 1)`.
    RmwStore,
}

/// Outcome of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct InterleaveReport {
    pub config_threads: usize,
    pub config_rounds: usize,
    /// Distinct states visited (memoized DFS).
    pub states_explored: u64,
    /// `None` when every schedule upholds every invariant.
    pub violation: Option<Violation>,
}

impl InterleaveReport {
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exploration state: the shared version counter, the global count of
/// *successful* broadcasts, and each thread's freshest observed version
/// and pending (buggy) RMW load. Program counters live in the DSL.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct BusState {
    version: u8,
    broadcasts: u8,
    last_seen: Vec<u8>,
    rmw_loaded: Vec<u8>,
}

/// Poll semantics shared by the program step and the terminal
/// quiescent-delivery check. I4 (at-most-once, forward-only application)
/// is checked here, at the only point a replica's view can move.
fn poll(s: &mut BusState, tid: usize) -> Result<(), InvariantError> {
    let current = s.version;
    if current != s.last_seen[tid] {
        // Applying a RESET: the adopted version must be *newer* —
        // adopting an older one would mean re-applying a version this
        // replica already consumed.
        if current < s.last_seen[tid] {
            return Err((
                "at-most-once",
                format!(
                    "thread {tid} would re-apply: view {} but bus at {current}",
                    s.last_seen[tid]
                ),
            ));
        }
        s.last_seen[tid] = current;
    }
    Ok(())
}

/// Exhaustively explores every interleaving of the modeled RESET bus.
///
/// # Panics
///
/// When the bounds leave the supported range (threads outside 1..=4, or
/// a program long enough to overflow the `u8` version counter).
pub fn explore(config: &InterleaveConfig) -> InterleaveReport {
    assert!(
        (1..=4).contains(&config.threads),
        "threads must be in 1..=4"
    );
    assert!(
        config.threads * config.rounds < 250,
        "bounded model must keep the version counter within a u8"
    );
    let threads = config.threads;
    let bus = config.model;
    // Per-round program, identical for every thread.
    let round: &[Op] = match bus {
        BusModel::VersionCas => &[Op::Poll, Op::Broadcast, Op::Poll],
        BusModel::SplitRmw => &[Op::Poll, Op::RmwLoad, Op::RmwStore, Op::Poll],
    };
    let program: Vec<Op> = round
        .iter()
        .copied()
        .cycle()
        .take(round.len() * config.rounds)
        .collect();
    let program_len = program.len();
    let dsl: Model<BusState> = Model {
        name: match bus {
            BusModel::VersionCas => "reset-bus",
            BusModel::SplitRmw => "reset-bus(split-rmw twin)",
        },
        threads,
        program_len,
        initial: BusState {
            version: 0,
            broadcasts: 0,
            last_seen: vec![0; threads],
            rmw_loaded: vec![0; threads],
        },
        step: Box::new(move |s: &BusState, tid, pc| {
            let op = program[pc];
            match op {
                Op::Poll => {
                    let mut n = s.clone();
                    poll(&mut n, tid)?;
                    Ok(vec![(n, pc + 1)])
                }
                // A broadcast step is explored both ways: the replica
                // improved the shared best (execute), or it did not
                // (skip). Every subset of improvement patterns is thereby
                // covered.
                Op::Broadcast => {
                    // CAS(observed, observed + 1) against the freshest view.
                    let mut exec = s.clone();
                    let observed = exec.last_seen[tid];
                    if exec.version == observed {
                        exec.version = observed + 1;
                        exec.broadcasts += 1;
                    }
                    // Else: dropped as stale — the transition invariant
                    // verifies a stale stamp can never have advanced the
                    // version.
                    Ok(vec![(exec, pc + 1), (s.clone(), pc + 1)])
                }
                Op::RmwLoad => {
                    let mut exec = s.clone();
                    exec.rmw_loaded[tid] = s.version;
                    // Skipping a split broadcast skips both halves.
                    Ok(vec![(exec, pc + 1), (s.clone(), pc + 2)])
                }
                Op::RmwStore => {
                    // The bug under test: blind store, no stamp comparison.
                    let mut n = s.clone();
                    n.version = n.rmw_loaded[tid] + 1;
                    n.broadcasts += 1;
                    Ok(vec![(n, pc + 1)])
                }
            }
        }),
        transition: Box::new(|before: &BusState, after: &BusState| {
            // I2 / no-stale-wins: the bus version never moves backwards; a
            // broadcast stamped with a superseded version must not undo a
            // newer reset.
            if after.version < before.version {
                return Err((
                    "monotone-version",
                    format!(
                        "bus version regressed {} -> {} (a stale broadcast overwrote \
                         a newer reset)",
                        before.version, after.version
                    ),
                ));
            }
            // I1 (stepwise): version and successful-broadcast count advance
            // in lockstep; a broadcast that "succeeds" without advancing the
            // version is a lost reset.
            if after.broadcasts - before.broadcasts != after.version - before.version {
                return Err((
                    "no-lost-reset",
                    format!(
                        "{} broadcast(s) succeeded but the version advanced by {} \
                         (version {} -> {})",
                        after.broadcasts - before.broadcasts,
                        after.version - before.version,
                        before.version,
                        after.version
                    ),
                ));
            }
            Ok(())
        }),
        terminal: Box::new(move |s: &BusState| {
            // I1 (terminal): every reset that was ever successfully
            // broadcast is accounted for in the final version — none lost.
            if s.broadcasts != s.version {
                return Err((
                    "no-lost-reset",
                    format!(
                        "{} successful broadcast(s) but final version {}",
                        s.broadcasts, s.version
                    ),
                ));
            }
            // I5: quiescent delivery — after broadcasts stop, a single poll
            // brings every replica to the final version (each program ends
            // with a poll, and `run_replica` keeps polling until the global
            // stop flag).
            let mut quiesced = s.clone();
            for tid in 0..threads {
                poll(&mut quiesced, tid)?;
                if quiesced.last_seen[tid] != quiesced.version {
                    return Err((
                        "quiescent-delivery",
                        format!(
                            "thread {tid} stuck at version {} after quiescent poll; \
                             bus at {}",
                            quiesced.last_seen[tid], quiesced.version
                        ),
                    ));
                }
            }
            Ok(())
        }),
    };
    let result = model::explore(&dsl);
    InterleaveReport {
        config_threads: config.threads,
        config_rounds: config.rounds,
        states_explored: result.states_explored,
        violation: result.violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_bus_has_no_bad_schedule() {
        let report = explore(&InterleaveConfig::default());
        assert!(report.holds(), "{:?}", report.violation);
        // The bounded model is non-trivial: many distinct states.
        assert!(report.states_explored > 500, "{}", report.states_explored);
    }

    #[test]
    fn cas_bus_holds_at_larger_bounds() {
        let report = explore(&InterleaveConfig {
            threads: 4,
            rounds: 2,
            model: BusModel::VersionCas,
        });
        assert!(report.holds(), "{:?}", report.violation);
    }

    #[test]
    fn split_rmw_bus_loses_a_reset_and_is_caught() {
        let report = explore(&InterleaveConfig {
            model: BusModel::SplitRmw,
            ..InterleaveConfig::default()
        });
        let violation = report.violation.expect("split RMW must violate");
        assert!(
            violation.invariant == "no-lost-reset" || violation.invariant == "monotone-version",
            "unexpected invariant: {violation}"
        );
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn single_thread_is_trivially_safe_in_both_models() {
        for model in [BusModel::VersionCas, BusModel::SplitRmw] {
            let report = explore(&InterleaveConfig {
                threads: 1,
                rounds: 2,
                model,
            });
            assert!(report.holds(), "{model:?}: {:?}", report.violation);
        }
    }
}
