//! Exhaustive interleaving checker for the version-stamped RESET bus.
//!
//! `mvcom_core::se::ParallelRunner` coordinates its Γ replica threads
//! through a `ResetBus`: a single atomic version counter. A replica that
//! improves the global best *polls* the bus (adopting the freshest
//! version) and then *broadcasts* a RESET by compare-and-swapping
//! `version: observed → observed + 1`; every replica applies a RESET at
//! most once per version when its next poll observes a change.
//!
//! The runner's correctness claim is scheduling-independent:
//!
//! * **no lost reset** — every successful broadcast advances the version
//!   by exactly one, so `version` counts broadcasts exactly;
//! * **no stale-version-wins** — a broadcast stamped against a superseded
//!   version never advances the bus (the CAS fails and the signal is
//!   dropped as stale);
//! * **at-most-once application** — a replica never applies the same
//!   version twice, and its view only moves forward;
//! * **quiescent delivery** — once broadcasts stop, one more poll brings
//!   every replica to the final version.
//!
//! This module *proves* those properties for a bounded instance (default:
//! 3 replica threads × 2 broadcast rounds, every broadcast optionally
//! skipped) by loom-style depth-first enumeration of every thread
//! interleaving of the modeled atomic steps. Distinct states are memoized
//! (the invariants are per-transition or state-local, so a state's
//! subtree never needs re-exploration), which closes the space in
//! milliseconds.
//!
//! To show the checker has teeth, [`BusModel::SplitRmw`] models the
//! classic bug the CAS prevents — a broadcast implemented as a separate
//! load and store — and the DFS produces a concrete lost-reset schedule
//! for it.

use std::collections::BTreeSet;
use std::fmt;

/// Which RESET-bus implementation to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusModel {
    /// The shipped protocol: broadcast is `CAS(observed, observed + 1)`.
    VersionCas,
    /// A deliberately broken bus: broadcast is a non-atomic
    /// read-modify-write (`load` then `store loaded + 1`). Two racing
    /// broadcasts both "succeed" but only advance the version once — a
    /// lost reset the checker must detect.
    SplitRmw,
}

/// Bounds of the exploration. Kept small enough that every packed state
/// component fits a nibble (see `State::key`): at most 4 threads and a
/// program short enough that the version counter stays below 16.
#[derive(Debug, Clone, Copy)]
pub struct InterleaveConfig {
    /// Modeled replica threads (max 4).
    pub threads: usize,
    /// Broadcast rounds per thread (each round: poll, broadcast, poll).
    pub rounds: usize,
    /// Bus implementation under test.
    pub model: BusModel,
}

impl Default for InterleaveConfig {
    fn default() -> InterleaveConfig {
        InterleaveConfig {
            threads: 3,
            rounds: 2,
            model: BusModel::VersionCas,
        }
    }
}

/// One modeled atomic step of a replica. Mirrors `run_replica`: each
/// round polls for the freshest version, then (maybe) broadcasts stamped
/// against it, and ends with the round's convergence-clock poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `ResetBus::poll`: adopt the current version.
    Poll,
    /// `ResetBus::broadcast_from(last_seen)` — explored both as executed
    /// and as skipped (a replica only broadcasts when it improved).
    Broadcast,
    /// First half of the broken [`BusModel::SplitRmw`] broadcast.
    RmwLoad,
    /// Second half of the broken broadcast: blind `store(loaded + 1)`.
    RmwStore,
}

/// A violation found by the DFS: which invariant broke and the schedule
/// (thread id per step) that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub invariant: &'static str,
    pub detail: String,
    /// Thread index executing each step, in order.
    pub schedule: Vec<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (schedule: {:?})",
            self.invariant, self.detail, self.schedule
        )
    }
}

/// Outcome of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct InterleaveReport {
    pub config_threads: usize,
    pub config_rounds: usize,
    /// Distinct states visited (memoized DFS).
    pub states_explored: u64,
    /// `None` when every schedule upholds every invariant.
    pub violation: Option<Violation>,
}

impl InterleaveReport {
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

const MAX_THREADS: usize = 4;

/// Immutable per-run model description.
struct Model {
    /// Program of every thread (identical programs, adversarial schedule).
    program: Vec<Op>,
    threads: usize,
}

/// Exploration state: the shared version counter, the global count of
/// *successful* broadcasts, and each thread's program counter, freshest
/// observed version, and pending (buggy) RMW load.
#[derive(Clone, Copy, PartialEq, Eq)]
struct State {
    version: u8,
    broadcasts: u8,
    pc: [u8; MAX_THREADS],
    last_seen: [u8; MAX_THREADS],
    rmw_loaded: [u8; MAX_THREADS],
}

impl State {
    /// Packs the state into a memoization key: every component is bounded
    /// by the version counter, which the config bounds below 16.
    fn key(&self) -> u64 {
        let mut k = u64::from(self.version) | (u64::from(self.broadcasts) << 4);
        for t in 0..MAX_THREADS {
            let per = u64::from(self.pc[t])
                | (u64::from(self.last_seen[t]) << 4)
                | (u64::from(self.rmw_loaded[t]) << 8);
            k |= per << (8 + 12 * t);
        }
        k
    }
}

/// Exhaustively explores every interleaving of the modeled RESET bus.
///
/// # Panics
///
/// When the bounds overflow the packed state (more than 4 threads, or a
/// program long enough to push the version counter past 15).
pub fn explore(config: &InterleaveConfig) -> InterleaveReport {
    assert!(
        (1..=MAX_THREADS).contains(&config.threads),
        "threads must be in 1..=4"
    );
    let mut program = Vec::new();
    for _ in 0..config.rounds {
        program.push(Op::Poll);
        match config.model {
            BusModel::VersionCas => program.push(Op::Broadcast),
            BusModel::SplitRmw => {
                program.push(Op::RmwLoad);
                program.push(Op::RmwStore);
            }
        }
        program.push(Op::Poll);
    }
    assert!(
        config.threads * config.rounds < 15 && program.len() < 16,
        "bounded model must keep version and pc within a nibble"
    );
    let model = Model {
        program,
        threads: config.threads,
    };
    let state = State {
        version: 0,
        broadcasts: 0,
        pc: [0; MAX_THREADS],
        last_seen: [0; MAX_THREADS],
        rmw_loaded: [0; MAX_THREADS],
    };
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut states = 0u64;
    let mut schedule = Vec::new();
    let violation = dfs(&model, state, &mut seen, &mut states, &mut schedule).err();
    InterleaveReport {
        config_threads: config.threads,
        config_rounds: config.rounds,
        states_explored: states,
        violation,
    }
}

fn dfs(
    model: &Model,
    state: State,
    seen: &mut BTreeSet<u64>,
    states: &mut u64,
    schedule: &mut Vec<usize>,
) -> Result<(), Violation> {
    if !seen.insert(state.key()) {
        return Ok(());
    }
    *states += 1;

    let mut terminal = true;
    for tid in 0..model.threads {
        let pc = state.pc[tid] as usize;
        if pc >= model.program.len() {
            continue;
        }
        terminal = false;
        let op = model.program[pc];
        // A broadcast step is explored both ways: the replica improved the
        // shared best (execute), or it did not (skip). Every subset of
        // improvement patterns is thereby covered.
        let executions: &[bool] = match op {
            Op::Broadcast | Op::RmwLoad => &[true, false],
            _ => &[true],
        };
        for &execute in executions {
            let mut next = state;
            next.pc[tid] = (pc + 1) as u8;
            schedule.push(tid);
            if execute {
                step(op, tid, &mut next).map_err(|(inv, detail)| Violation {
                    invariant: inv,
                    detail,
                    schedule: schedule.clone(),
                })?;
            } else if op == Op::RmwLoad {
                // Skipping a split broadcast skips both halves.
                next.pc[tid] = (pc + 2) as u8;
            }
            check_transition(&state, &next).map_err(|(inv, detail)| Violation {
                invariant: inv,
                detail,
                schedule: schedule.clone(),
            })?;
            let r = dfs(model, next, seen, states, schedule);
            schedule.pop();
            r?;
        }
    }

    if terminal {
        check_terminal(model, &state).map_err(|(inv, detail)| Violation {
            invariant: inv,
            detail,
            schedule: schedule.clone(),
        })?;
    }
    Ok(())
}

/// Executes one atomic step. I4 (at-most-once, forward-only application)
/// is checked here, at the only point a replica's view can move.
fn step(op: Op, tid: usize, s: &mut State) -> Result<(), (&'static str, String)> {
    match op {
        Op::Poll => {
            let current = s.version;
            if current != s.last_seen[tid] {
                // Applying a RESET: the adopted version must be *newer* —
                // adopting an older one would mean re-applying a version
                // this replica already consumed.
                if current < s.last_seen[tid] {
                    return Err((
                        "at-most-once",
                        format!(
                            "thread {tid} would re-apply: view {} but bus at {current}",
                            s.last_seen[tid]
                        ),
                    ));
                }
                s.last_seen[tid] = current;
            }
        }
        Op::Broadcast => {
            // CAS(observed, observed + 1) against the thread's freshest view.
            let observed = s.last_seen[tid];
            if s.version == observed {
                s.version = observed + 1;
                s.broadcasts += 1;
            }
            // Else: dropped as stale — check_transition verifies a stale
            // stamp can never have advanced the version.
        }
        Op::RmwLoad => {
            s.rmw_loaded[tid] = s.version;
        }
        Op::RmwStore => {
            // The bug under test: blind store, no stamp comparison.
            s.version = s.rmw_loaded[tid] + 1;
            s.broadcasts += 1;
        }
    }
    Ok(())
}

/// Invariants that must hold across every single transition.
fn check_transition(before: &State, after: &State) -> Result<(), (&'static str, String)> {
    // I2 / no-stale-wins: the bus version never moves backwards; a
    // broadcast stamped with a superseded version must not undo a newer
    // reset.
    if after.version < before.version {
        return Err((
            "monotone-version",
            format!(
                "bus version regressed {} -> {} (a stale broadcast overwrote \
                 a newer reset)",
                before.version, after.version
            ),
        ));
    }
    // I1 (stepwise): version and successful-broadcast count advance in
    // lockstep; a broadcast that "succeeds" without advancing the version
    // is a lost reset.
    if after.broadcasts - before.broadcasts != after.version - before.version {
        return Err((
            "no-lost-reset",
            format!(
                "{} broadcast(s) succeeded but the version advanced by {} \
                 (version {} -> {})",
                after.broadcasts - before.broadcasts,
                after.version - before.version,
                before.version,
                after.version
            ),
        ));
    }
    Ok(())
}

/// Invariants checked once every thread has run to completion.
fn check_terminal(model: &Model, s: &State) -> Result<(), (&'static str, String)> {
    // I1 (terminal): every reset that was ever successfully broadcast is
    // accounted for in the final version — none were lost.
    if s.broadcasts != s.version {
        return Err((
            "no-lost-reset",
            format!(
                "{} successful broadcast(s) but final version {}",
                s.broadcasts, s.version
            ),
        ));
    }
    // I5: quiescent delivery — after broadcasts stop, a single poll brings
    // every replica to the final version (each program ends with a poll,
    // and `run_replica` keeps polling until the global stop flag).
    let mut quiesced = *s;
    for tid in 0..model.threads {
        step(Op::Poll, tid, &mut quiesced)?;
        if quiesced.last_seen[tid] != quiesced.version {
            return Err((
                "quiescent-delivery",
                format!(
                    "thread {tid} stuck at version {} after quiescent poll; bus at {}",
                    quiesced.last_seen[tid], quiesced.version
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_bus_has_no_bad_schedule() {
        let report = explore(&InterleaveConfig::default());
        assert!(report.holds(), "{:?}", report.violation);
        // The bounded model is non-trivial: many distinct states.
        assert!(report.states_explored > 500, "{}", report.states_explored);
    }

    #[test]
    fn cas_bus_holds_at_larger_bounds() {
        let report = explore(&InterleaveConfig {
            threads: 4,
            rounds: 2,
            model: BusModel::VersionCas,
        });
        assert!(report.holds(), "{:?}", report.violation);
    }

    #[test]
    fn split_rmw_bus_loses_a_reset_and_is_caught() {
        let report = explore(&InterleaveConfig {
            model: BusModel::SplitRmw,
            ..InterleaveConfig::default()
        });
        let violation = report.violation.expect("split RMW must violate");
        assert!(
            violation.invariant == "no-lost-reset" || violation.invariant == "monotone-version",
            "unexpected invariant: {violation}"
        );
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn single_thread_is_trivially_safe_in_both_models() {
        for model in [BusModel::VersionCas, BusModel::SplitRmw] {
            let report = explore(&InterleaveConfig {
                threads: 1,
                rounds: 2,
                model,
            });
            assert!(report.holds(), "{model:?}: {:?}", report.violation);
        }
    }
}
