//! A small, self-contained Rust lexer.
//!
//! The workspace builds fully offline, so `mvcom-lint` cannot lean on `syn`
//! or `proc-macro2`; the rule engine instead pattern-matches over a token
//! stream produced here. The lexer understands everything that matters for
//! *not lying about lines*: line/block comments (nested), doc comments,
//! string/char/byte literals, raw strings with hash fences, lifetimes vs.
//! char literals, numeric literals, and multi-character operators. It does
//! not attempt to parse items or expressions — rules work on token
//! sequences plus a brace-depth cursor.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident,
    /// Lifetime such as `'a` or `'static` (without the ticks' content split).
    Lifetime,
    /// String, raw-string, byte-string, or char/byte literal.
    StrLit,
    /// Numeric literal; [`Token::is_float`] classifies it further.
    NumLit,
    /// Punctuation; multi-character operators (`::`, `==`, `!=`, `..=`,
    /// `->`, ...) arrive as a single token.
    Punct,
}

/// One non-comment token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether a [`TokKind::NumLit`] denotes a floating-point value:
    /// a decimal point, a (non-hex) exponent, or an `f32`/`f64` suffix.
    pub fn is_float(&self) -> bool {
        if self.kind != TokKind::NumLit {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0X") {
            return false;
        }
        t.contains('.') || t.ends_with("f32") || t.ends_with("f64") || t.contains(['e', 'E'])
    }
}

/// One comment (line, block, or doc) with the line it *starts* on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    /// Last line the comment touches (equals `line` for line comments).
    pub end_line: u32,
}

/// Lexer output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Unterminated constructs
/// (strings, block comments) consume to end-of-input rather than erroring:
/// the linter must keep going on any input the compiler itself would
/// reject, and findings on garbage are better than none.
pub fn lex(source: &str) -> LexOutput {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: LexOutput,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> LexOutput {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_lit(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn take_str(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: self.take_str(start),
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        self.out.comments.push(Comment {
            text: self.take_str(start),
            line,
            end_line: self.line,
        });
    }

    /// Cooked string literal: `"..."` with backslash escapes.
    fn string_lit(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                // Clamp: an escape as the very last byte (`"…\`) must not
                // push the cursor past end-of-input. An escaped newline
                // (string continuation) still ends a source line; count it
                // or every later token's line drifts.
                b'\\' => {
                    if self.src.get(self.pos + 1) == Some(&b'\n') {
                        self.line += 1;
                    }
                    self.pos = (self.pos + 2).min(self.src.len());
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::StrLit, self.take_str(start), line);
    }

    /// Distinguishes `'a` (lifetime) from `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // `'x'` is a char; `'x` followed by anything else is a
                // lifetime (covers `'a`, `'static`, `'_`).
                self.peek(2) == Some(b'\'')
            }
            // `'('`, `' '`, etc.: always a char literal.
            _ => true,
        };
        if is_char {
            self.pos += 1;
            while self.pos < self.src.len() {
                match self.src[self.pos] {
                    // Same end-of-input clamp as in `string_lit`.
                    b'\\' => self.pos = (self.pos + 2).min(self.src.len()),
                    b'\'' => {
                        self.pos += 1;
                        break;
                    }
                    b'\n' => break, // malformed; don't run away
                    _ => self.pos += 1,
                }
            }
            self.push(TokKind::StrLit, self.take_str(start), line);
        } else {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            self.push(TokKind::Lifetime, self.take_str(start), line);
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`.
    /// Returns `true` (and consumes) only when the prefix really starts a
    /// literal; otherwise leaves the cursor for [`Lexer::ident`].
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c = self.src[self.pos];
        let line = self.line;
        let start = self.pos;
        let mut look = self.pos + 1;
        if c == b'b' && self.src.get(look) == Some(&b'r') {
            look += 1;
        }
        let raw = c == b'r' || (c == b'b' && self.src.get(self.pos + 1) == Some(&b'r'));
        if raw {
            let mut hashes = 0usize;
            while self.src.get(look) == Some(&b'#') {
                hashes += 1;
                look += 1;
            }
            if self.src.get(look) != Some(&b'"') {
                return false;
            }
            // Raw string: scan for `"` followed by `hashes` hashes.
            self.pos = look + 1;
            let fence: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            while self.pos < self.src.len() {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                if self.src[self.pos..].starts_with(&fence) {
                    self.pos += fence.len();
                    break;
                }
                self.pos += 1;
            }
            self.push(TokKind::StrLit, self.take_str(start), line);
            return true;
        }
        if c == b'b' {
            match self.src.get(self.pos + 1) {
                Some(b'"') => {
                    self.pos += 1;
                    self.string_lit();
                    // string_lit pushed text without the `b`; cosmetic only.
                    return true;
                }
                Some(b'\'') => {
                    self.pos += 1;
                    self.char_or_lifetime();
                    return true;
                }
                _ => return false,
            }
        }
        false
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let hex = self.src[self.pos] == b'0'
            && matches!(
                self.peek(1),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
            );
        self.pos += 1;
        if hex {
            self.pos += 1;
        }
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                // `1e-9` / `2E+10`: the sign belongs to the exponent.
                if !hex
                    && (c == b'e' || c == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                {
                    self.pos += 2;
                    continue;
                }
                self.pos += 1;
            } else if c == b'.' {
                // Consume a decimal point only when a digit follows, so the
                // range `0..n` and method call `1.max(2)` stay separate.
                if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.push(TokKind::NumLit, self.take_str(start), line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(TokKind::Ident, self.take_str(start), line);
    }

    /// Longest-match multi-character operators so rules can look for `==`
    /// or `::` as single tokens.
    fn punct(&mut self) {
        const THREE: [&str; 3] = ["..=", "<<=", ">>="];
        const TWO: [&str; 18] = [
            "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=",
            "%=", "^=", "&=", "|=",
        ];
        let line = self.line;
        let rest = &self.src[self.pos..];
        for cand in THREE {
            if rest.starts_with(cand.as_bytes()) {
                self.pos += 3;
                self.push(TokKind::Punct, cand.to_string(), line);
                return;
            }
        }
        for cand in TWO {
            if rest.starts_with(cand.as_bytes()) {
                self.pos += 2;
                self.push(TokKind::Punct, cand.to_string(), line);
                return;
            }
        }
        let start = self.pos;
        self.pos += 1;
        // Multi-byte UTF-8 scalar: consume continuation bytes.
        while self.peek(0).is_some_and(|c| c & 0xC0 == 0x80) {
            self.pos += 1;
        }
        self.push(TokKind::Punct, self.take_str(start), line);
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("use std::collections::HashMap;"),
            ["use", "std", "::", "collections", "::", "HashMap", ";"]
        );
    }

    #[test]
    fn comments_are_separated_with_lines() {
        let out = lex("let a = 1; // trailing\n// own line\nlet b = 2;");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert_eq!(out.comments[1].line, 2);
        assert_eq!(out.tokens.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn nested_block_comment() {
        let out = lex("/* a /* b */ c */ fn");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].text, "fn");
    }

    #[test]
    fn strings_hide_their_contents() {
        let out = lex(r#"let s = "HashMap // not a comment"; x"#);
        assert!(out.comments.is_empty());
        assert!(out
            .tokens
            .iter()
            .all(|t| t.kind != TokKind::Ident || t.text != "HashMap"));
    }

    #[test]
    fn raw_string_with_fence() {
        let out = lex(r###"let s = r#"quote " inside"#; y"###);
        assert_eq!(out.tokens.last().map(|t| t.text.as_str()), Some("y"));
    }

    #[test]
    fn lifetime_vs_char() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::StrLit)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_classification() {
        let out = lex("1.5 2 1e-9 0x1f 3f64 10_000 2.");
        let floats: Vec<bool> = out.tokens.iter().map(Token::is_float).collect();
        // `2.` lexes as `2` + `.` (no digit follows), hence 7 tokens; the
        // final `2` is integral.
        assert_eq!(
            floats,
            [true, false, true, false, true, false, false, false]
        );
    }

    #[test]
    fn multi_char_operators_fuse() {
        assert_eq!(
            texts("a == b != c .. d ..= e :: f -> g"),
            ["a", "==", "b", "!=", "c", "..", "d", "..=", "e", "::", "f", "->", "g"]
        );
    }

    #[test]
    fn trailing_escape_does_not_overrun() {
        // A backslash as the final byte of the input used to push the
        // cursor past end-of-input and panic in `take_str`.
        for src in ["\"\\", "'\\", "b\"\\", "b'\\", "let s = \"abc\\"] {
            let out = lex(src);
            assert!(!out.tokens.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn string_continuation_counts_its_newline() {
        // `"a \` + newline + `b"` spans two lines via an escaped newline;
        // the token after the string must sit on line 2, not line 1.
        let out = lex("\"a \\\nb\"\nafter");
        let after = out
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("ident after the string");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        assert_eq!(texts("0..n"), ["0", "..", "n"]);
        assert_eq!(texts("0..=9"), ["0", "..=", "9"]);
    }
}
