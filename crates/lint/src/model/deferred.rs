//! Interleaving model of the `Obs` deferred/replay event buffer.
//!
//! PR 8's committee-parallel stage hands every worker a *deferred* `Obs`
//! handle (`Obs::deferred()`): events emitted while the task runs land in
//! a task-private capture buffer without sequence numbers. After the
//! join, the coordinator replays the buffers **in task order**, assigning
//! sequence numbers at replay time. The determinism claim: **the
//! replayed event sequence is independent of completion order, with no
//! loss and no duplication** — the event stream is byte-identical to a
//! serial run at any `--threads N`.
//!
//! [`ObsModel::DeferredReplay`] is the shipped protocol; the terminal
//! invariant compares the replayed stream against the canonical serial
//! stream. [`ObsModel::DirectEmit`] is the bug C1 exists to catch:
//! workers emit straight into the shared sequenced log, so the stream
//! order follows the scheduler. The DFS produces a concrete schedule
//! where the streams diverge.

use super::{Exploration, Model};

/// Which emission path to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsModel {
    /// The shipped protocol: per-task capture buffers, replayed in task
    /// order after the join.
    DeferredReplay,
    /// The broken twin: workers emit directly into the shared log in
    /// completion order.
    DirectEmit,
}

/// Bounds of the exploration.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Modeled workers.
    pub workers: usize,
    /// Tasks claimed off the shared counter.
    pub tasks: usize,
    /// Events each task emits.
    pub events: usize,
    pub model: ObsModel,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            workers: 2,
            tasks: 3,
            events: 2,
            model: ObsModel::DeferredReplay,
        }
    }
}

/// Shared state: the claim counter, each worker's in-flight task, the
/// per-task capture buffers, and the shared log (for the broken twin).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ObsState {
    next: u8,
    claimed: Vec<Option<u8>>,
    buffers: Vec<Vec<u8>>,
    log: Vec<u8>,
}

/// Exhaustively explores the deferred-emission protocol.
///
/// # Panics
///
/// When a bound is 0 or the label encoding overflows a `u8`
/// (`tasks * events` > 250).
pub fn explore(config: &ObsConfig) -> Exploration {
    assert!(
        (1..=8).contains(&config.workers)
            && config.tasks >= 1
            && config.events >= 1
            && config.tasks * config.events <= 250,
        "obs model bounds: 1..=8 workers, tasks*events <= 250"
    );
    let tasks = config.tasks as u8;
    let events = config.events as u8;
    let model = config.model;
    // Per-worker program: Claim, then `events` Emit steps, repeated.
    let stride = 1 + config.events;
    let program_len = config.tasks * stride;
    let dsl: Model<ObsState> = Model {
        name: match model {
            ObsModel::DeferredReplay => "obs-deferred",
            ObsModel::DirectEmit => "obs-deferred(direct-emit twin)",
        },
        threads: config.workers,
        program_len,
        initial: ObsState {
            next: 0,
            claimed: vec![None; config.workers],
            buffers: vec![Vec::new(); config.tasks],
            log: Vec::new(),
        },
        step: Box::new(move |s: &ObsState, tid, pc| {
            let mut n = s.clone();
            if pc % stride == 0 {
                // Claim the next task off the shared counter.
                let index = n.next;
                if index >= tasks {
                    return Ok(vec![(n, program_len)]);
                }
                n.next = index + 1;
                n.claimed[tid] = Some(index);
                return Ok(vec![(n, pc + 1)]);
            }
            // Emit event `e` of the claimed task. The label `task*events + e`
            // is what a sequenced sink would record for it in a serial run.
            let e = (pc % stride - 1) as u8;
            let Some(task) = n.claimed[tid] else {
                return Err((
                    "claim-before-emit",
                    format!("worker {tid} emitted without a claimed task"),
                ));
            };
            let label = task * events + e;
            match model {
                ObsModel::DeferredReplay => {
                    let buffer = &mut n.buffers[usize::from(task)];
                    if buffer.len() >= usize::from(events) {
                        return Err((
                            "no-duplication",
                            format!("task {task} buffered more than {events} events"),
                        ));
                    }
                    buffer.push(label);
                }
                ObsModel::DirectEmit => n.log.push(label),
            }
            if e + 1 == events {
                n.claimed[tid] = None; // task finished
            }
            Ok(vec![(n, pc + 1)])
        }),
        transition: Box::new(|before: &ObsState, after: &ObsState| {
            if after.next < before.next {
                return Err((
                    "monotone-claim",
                    format!("claim counter regressed {} -> {}", before.next, after.next),
                ));
            }
            Ok(())
        }),
        terminal: Box::new(move |s: &ObsState| {
            // The canonical serial stream: every task's events, in task
            // order, in emission order.
            let canonical: Vec<u8> = (0..tasks)
                .flat_map(|t| (0..events).map(move |e| t * events + e))
                .collect();
            let replayed: Vec<u8> = match model {
                ObsModel::DeferredReplay => s.buffers.iter().flatten().copied().collect(),
                ObsModel::DirectEmit => s.log.clone(),
            };
            if replayed.len() != canonical.len() {
                return Err((
                    "no-loss",
                    format!(
                        "replay carries {} events, serial stream has {}",
                        replayed.len(),
                        canonical.len()
                    ),
                ));
            }
            if replayed != canonical {
                return Err((
                    "replay-order",
                    format!(
                        "replayed stream {replayed:?} depends on completion order; \
                         serial stream is {canonical:?}"
                    ),
                ));
            }
            Ok(())
        }),
    };
    super::explore(&dsl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_replay_holds_at_default_bounds() {
        let result = explore(&ObsConfig::default());
        assert!(result.holds(), "{:?}", result.violation);
        assert!(result.states_explored > 100, "{}", result.states_explored);
    }

    #[test]
    fn deferred_replay_holds_at_three_workers() {
        let result = explore(&ObsConfig {
            workers: 3,
            ..ObsConfig::default()
        });
        assert!(result.holds(), "{:?}", result.violation);
    }

    #[test]
    fn direct_emit_twin_is_caught_with_a_schedule() {
        let result = explore(&ObsConfig {
            model: ObsModel::DirectEmit,
            ..ObsConfig::default()
        });
        let violation = result.violation.expect("direct emission must reorder");
        assert_eq!(violation.invariant, "replay-order");
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn single_worker_is_safe_in_both_models() {
        for model in [ObsModel::DeferredReplay, ObsModel::DirectEmit] {
            let result = explore(&ObsConfig {
                workers: 1,
                model,
                ..ObsConfig::default()
            });
            assert!(result.holds(), "{model:?}: {:?}", result.violation);
        }
    }
}
