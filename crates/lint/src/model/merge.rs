//! Interleaving model of the `run_tasks` partition/merge protocol.
//!
//! `mvcom_bench::harness::run_tasks` fans a task vector across workers:
//! each worker claims the next task index off a shared atomic counter,
//! computes the task (seeded by its *index*, not its worker), and writes
//! the result into the slot *of that index*. The merged output is read
//! slot-by-slot in index order after the join. The determinism claim:
//! **the merged output order equals task-index order for every
//! interleaving** — no matter which worker finishes which task when.
//!
//! [`MergeModel::IndexedSlots`] is the shipped protocol. The model makes
//! the design argument mechanical: a task's payload is a function of its
//! index, a slot is written exactly once (per-step invariant), and the
//! terminal invariant reads the slots in index order and compares against
//! the canonical serial output.
//!
//! [`MergeModel::PushOrder`] is the tempting bug the slot design avoids:
//! workers push results into one shared vector as they finish. The DFS
//! finds a schedule where a later-claimed task completes first and the
//! merge order diverges from task order.

use super::{Exploration, Model};

/// Which merge implementation to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeModel {
    /// The shipped protocol: results land in `slots[task_index]`, merged
    /// by index after the join.
    IndexedSlots,
    /// The broken twin: results are pushed to a shared vec in completion
    /// order.
    PushOrder,
}

/// Bounds of the exploration.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Modeled workers (the interesting regime is 2–3).
    pub workers: usize,
    /// Tasks to partition.
    pub tasks: usize,
    pub model: MergeModel,
}

impl Default for MergeConfig {
    fn default() -> MergeConfig {
        MergeConfig {
            workers: 3,
            tasks: 3,
            model: MergeModel::IndexedSlots,
        }
    }
}

/// Shared state: the claim counter, each worker's in-flight task, the
/// per-task result slots, and (for the broken twin) the push log.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MergeState {
    next: u8,
    claimed: Vec<Option<u8>>,
    slots: Vec<Option<u8>>,
    log: Vec<u8>,
}

/// The deterministic payload of a task: a pure function of the task
/// index (each task derives its seed from its index, never its worker).
fn payload(task: u8) -> u8 {
    task
}

/// Exhaustively explores the merge protocol at the given bounds.
///
/// # Panics
///
/// When `workers` or `tasks` is 0 or large enough to overflow the `u8`
/// state encoding (> 200).
pub fn explore(config: &MergeConfig) -> Exploration {
    assert!(
        (1..=8).contains(&config.workers) && (1..=200).contains(&config.tasks),
        "merge model bounds: 1..=8 workers, 1..=200 tasks"
    );
    let tasks = config.tasks as u8;
    let model = config.model;
    let workers = config.workers;
    // Per-worker program: Claim at even pcs, Write at odd pcs. A claim
    // that finds the counter exhausted jumps to the end (the worker's
    // claim loop exits).
    let program_len = 2 * config.tasks;
    let dsl: Model<MergeState> = Model {
        name: match model {
            MergeModel::IndexedSlots => "run-tasks-merge",
            MergeModel::PushOrder => "run-tasks-merge(push-order twin)",
        },
        threads: workers,
        program_len,
        initial: MergeState {
            next: 0,
            claimed: vec![None; workers],
            slots: vec![None; config.tasks],
            log: Vec::new(),
        },
        step: Box::new(move |s: &MergeState, tid, pc| {
            let mut n = s.clone();
            if pc % 2 == 0 {
                // Claim: `next.fetch_add(1)` — atomic, so observing and
                // advancing the counter is one step.
                let index = n.next;
                if index >= tasks {
                    return Ok(vec![(n, program_len)]);
                }
                n.next = index + 1;
                n.claimed[tid] = Some(index);
                return Ok(vec![(n, pc + 1)]);
            }
            // Write: deposit the finished task's payload.
            let Some(task) = n.claimed[tid].take() else {
                return Err((
                    "claim-before-write",
                    format!("worker {tid} wrote without a claimed task"),
                ));
            };
            match model {
                MergeModel::IndexedSlots => {
                    let slot = &mut n.slots[usize::from(task)];
                    if slot.is_some() {
                        return Err(("exactly-once-write", format!("slot {task} written twice")));
                    }
                    *slot = Some(payload(task));
                }
                MergeModel::PushOrder => n.log.push(payload(task)),
            }
            Ok(vec![(n, pc + 1)])
        }),
        transition: Box::new(|before: &MergeState, after: &MergeState| {
            if after.next < before.next {
                return Err((
                    "monotone-claim",
                    format!("claim counter regressed {} -> {}", before.next, after.next),
                ));
            }
            Ok(())
        }),
        terminal: Box::new(move |s: &MergeState| {
            // Invariant: the merged output order equals task-index order.
            let merged: Vec<u8> = match model {
                MergeModel::IndexedSlots => {
                    let mut out = Vec::with_capacity(usize::from(tasks));
                    for (i, slot) in s.slots.iter().enumerate() {
                        match slot {
                            Some(v) => out.push(*v),
                            None => {
                                return Err(("no-task-loss", format!("task {i} was never merged")))
                            }
                        }
                    }
                    out
                }
                MergeModel::PushOrder => s.log.clone(),
            };
            let canonical: Vec<u8> = (0..tasks).map(payload).collect();
            if merged != canonical {
                return Err((
                    "merge-order",
                    format!(
                        "merged output {merged:?} differs from task-index order \
                         {canonical:?}"
                    ),
                ));
            }
            Ok(())
        }),
    };
    super::explore(&dsl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_slots_hold_at_default_bounds() {
        let result = explore(&MergeConfig::default());
        assert!(result.holds(), "{:?}", result.violation);
        assert!(result.states_explored > 100, "{}", result.states_explored);
    }

    #[test]
    fn indexed_slots_hold_at_two_workers_and_uneven_tasks() {
        for (workers, tasks) in [(2, 3), (2, 4), (3, 4)] {
            let result = explore(&MergeConfig {
                workers,
                tasks,
                model: MergeModel::IndexedSlots,
            });
            assert!(
                result.holds(),
                "{workers}w/{tasks}t: {:?}",
                result.violation
            );
        }
    }

    #[test]
    fn push_order_twin_is_caught_with_a_schedule() {
        let result = explore(&MergeConfig {
            model: MergeModel::PushOrder,
            ..MergeConfig::default()
        });
        let violation = result.violation.expect("push-order must break merge order");
        assert_eq!(violation.invariant, "merge-order");
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn single_worker_is_safe_in_both_models() {
        for model in [MergeModel::IndexedSlots, MergeModel::PushOrder] {
            let result = explore(&MergeConfig {
                workers: 1,
                tasks: 3,
                model,
            });
            assert!(result.holds(), "{model:?}: {:?}", result.violation);
        }
    }
}
