//! `lint::model` — a reusable interleaving-model DSL.
//!
//! PR 4 shipped a one-off exhaustive checker for the RESET bus; this
//! module generalizes its engine so every parallel protocol in the
//! workspace gets the same treatment. A [`Model`] is:
//!
//! * a **state** type `S` (anything `Clone + Ord`; `Ord` feeds the memo
//!   table — no hand-packed keys needed),
//! * `threads` identical programs of `program_len` **atomic steps**,
//! * a [`StepFn`] enumerating every outcome of executing step `pc` on
//!   thread `tid` — each outcome carries its successor state *and* next
//!   program counter, so a step can branch (execute/skip) or jump
//!   (claim-loop exit), and can fail a **per-step invariant**,
//! * a **transition invariant** checked across every single transition,
//! * a **terminal invariant** checked once all threads have finished.
//!
//! [`explore`] runs loom-style depth-first enumeration of every thread
//! interleaving. Distinct `(program counters, state)` pairs are memoized
//! — the invariants are per-transition or state-local, so a visited
//! state's subtree never needs re-exploration — which closes the bounded
//! spaces here in milliseconds. A violation comes back with the exact
//! schedule (thread id per step) that reaches it.
//!
//! Three models ship on this engine:
//!
//! * the RESET bus ([`crate::interleave`], ported unchanged),
//! * the `run_tasks` partition/merge protocol ([`merge`]),
//! * the `Obs` deferred replay buffer ([`deferred`]).
//!
//! Each pairs the shipped protocol with a deliberately broken twin (the
//! bug the design avoids) so the checker demonstrably has teeth.

pub mod deferred;
pub mod merge;

use std::collections::BTreeSet;
use std::fmt;

/// A per-step/transition/terminal invariant failure: name plus detail.
pub type InvariantError = (&'static str, String);

/// Possible outcomes of one atomic step: `(next state, next pc)` per
/// nondeterministic branch, or a per-step invariant violation.
pub type StepResult<S> = Result<Vec<(S, usize)>, InvariantError>;

/// Enumerates outcomes of executing step `pc` on thread `tid` in a state.
pub type StepFn<S> = Box<dyn Fn(&S, usize, usize) -> StepResult<S>>;

/// Invariant over a single transition (`before`, `after`).
pub type TransitionFn<S> = Box<dyn Fn(&S, &S) -> Result<(), InvariantError>>;

/// Invariant over a terminal state (all threads finished).
pub type TerminalFn<S> = Box<dyn Fn(&S) -> Result<(), InvariantError>>;

/// An interleaving model: `threads` copies of the same `program_len`-step
/// program over shared state `S`, under an adversarial scheduler.
pub struct Model<S> {
    /// Display name (reported in CLI/CI output).
    pub name: &'static str,
    pub threads: usize,
    /// Steps per thread program; a thread with `pc >= program_len` is done.
    pub program_len: usize,
    pub initial: S,
    pub step: StepFn<S>,
    pub transition: TransitionFn<S>,
    pub terminal: TerminalFn<S>,
}

/// A violation found by the DFS: which invariant broke and the schedule
/// (thread id per step) that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub invariant: &'static str,
    pub detail: String,
    /// Thread index executing each step, in order.
    pub schedule: Vec<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (schedule: {:?})",
            self.invariant, self.detail, self.schedule
        )
    }
}

/// Outcome of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    pub name: &'static str,
    pub threads: usize,
    /// Distinct `(pcs, state)` pairs visited (memoized DFS).
    pub states_explored: u64,
    /// `None` when every schedule upholds every invariant.
    pub violation: Option<Violation>,
}

impl Exploration {
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively explores every interleaving of `model`.
pub fn explore<S: Clone + Ord>(model: &Model<S>) -> Exploration {
    let mut explorer = Explorer {
        model,
        seen: BTreeSet::new(),
        states: 0,
        schedule: Vec::new(),
    };
    let pcs = vec![0u16; model.threads];
    let violation = explorer.dfs(model.initial.clone(), pcs).err();
    Exploration {
        name: model.name,
        threads: model.threads,
        states_explored: explorer.states,
        violation,
    }
}

struct Explorer<'m, S> {
    model: &'m Model<S>,
    seen: BTreeSet<(Vec<u16>, S)>,
    states: u64,
    schedule: Vec<usize>,
}

impl<S: Clone + Ord> Explorer<'_, S> {
    fn violation(&self, (invariant, detail): InvariantError) -> Violation {
        Violation {
            invariant,
            detail,
            schedule: self.schedule.clone(),
        }
    }

    fn dfs(&mut self, state: S, pcs: Vec<u16>) -> Result<(), Violation> {
        if !self.seen.insert((pcs.clone(), state.clone())) {
            return Ok(());
        }
        self.states += 1;

        let mut terminal = true;
        for tid in 0..self.model.threads {
            let pc = usize::from(pcs[tid]);
            if pc >= self.model.program_len {
                continue;
            }
            terminal = false;
            self.schedule.push(tid);
            let outcomes = (self.model.step)(&state, tid, pc).map_err(|e| self.violation(e))?;
            for (next, next_pc) in outcomes {
                (self.model.transition)(&state, &next).map_err(|e| self.violation(e))?;
                let mut next_pcs = pcs.clone();
                next_pcs[tid] = u16::try_from(next_pc).unwrap_or(u16::MAX);
                self.dfs(next, next_pcs)?;
            }
            self.schedule.pop();
        }

        if terminal {
            (self.model.terminal)(&state).map_err(|e| self.violation(e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-thread counter incremented via non-atomic read-modify-write:
    /// the textbook lost update, as a four-line model.
    fn racy_counter() -> Model<(u8, [u8; 2])> {
        Model {
            name: "racy-counter",
            threads: 2,
            program_len: 2,
            initial: (0, [0, 0]),
            step: Box::new(|s: &(u8, [u8; 2]), tid, pc| {
                let mut n = *s;
                match pc {
                    0 => n.1[tid] = n.0,     // load
                    _ => n.0 = n.1[tid] + 1, // store load+1
                }
                Ok(vec![(n, pc + 1)])
            }),
            transition: Box::new(|_, _| Ok(())),
            terminal: Box::new(|s: &(u8, [u8; 2])| {
                (s.0 == 2).then_some(()).ok_or((
                    "no-lost-update",
                    format!("both threads incremented but counter is {}", s.0),
                ))
            }),
        }
    }

    #[test]
    fn finds_the_lost_update_with_schedule() {
        let result = explore(&racy_counter());
        let violation = result.violation.expect("lost update must be found");
        assert_eq!(violation.invariant, "no-lost-update");
        // Both loads before either store: the schedule starts with the
        // two loads interleaved.
        assert!(violation.schedule.len() >= 3, "{violation}");
    }

    #[test]
    fn per_step_invariant_aborts_with_schedule() {
        let model: Model<u8> = Model {
            name: "step-fail",
            threads: 1,
            program_len: 1,
            initial: 0,
            step: Box::new(|_, _, _| Err(("boom", "step failed".to_string()))),
            transition: Box::new(|_, _| Ok(())),
            terminal: Box::new(|_| Ok(())),
        };
        let result = explore(&model);
        assert_eq!(result.violation.expect("fails").invariant, "boom");
    }

    #[test]
    fn jumps_skip_program_suffixes() {
        // One thread jumps straight to the end; terminal still runs.
        let model: Model<u8> = Model {
            name: "jump",
            threads: 1,
            program_len: 10,
            initial: 0,
            step: Box::new(|s, _, _| Ok(vec![(*s + 1, 10)])),
            transition: Box::new(|_, _| Ok(())),
            terminal: Box::new(|s| {
                (*s == 1)
                    .then_some(())
                    .ok_or(("ran-once", format!("state {s}")))
            }),
        };
        let result = explore(&model);
        assert!(result.holds(), "{:?}", result.violation);
        assert_eq!(result.states_explored, 2); // initial + terminal
    }

    #[test]
    fn memoization_collapses_commuting_schedules() {
        // Two threads each setting their own cell: 2 interleavings, but
        // the diamond shares its terminal state.
        let model: Model<[u8; 2]> = Model {
            name: "diamond",
            threads: 2,
            program_len: 1,
            initial: [0, 0],
            step: Box::new(|s, tid, pc| {
                let mut n = *s;
                n[tid] = 1;
                Ok(vec![(n, pc + 1)])
            }),
            transition: Box::new(|_, _| Ok(())),
            terminal: Box::new(|_| Ok(())),
        };
        let result = explore(&model);
        assert!(result.holds());
        // States: initial, {10}, {01}, {11} = 4 (not 5: the join is shared).
        assert_eq!(result.states_explored, 4);
    }
}
