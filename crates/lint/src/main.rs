//! The `mvcom-lint` binary.
//!
//! ```text
//! mvcom-lint check [--root PATH]   # lints + RESET-bus interleaving proof
//! mvcom-lint lint  [--root PATH]   # lexical lints only
//! mvcom-lint interleave            # interleaving proof only
//! ```
//!
//! Exit codes: `0` clean, `1` findings or a disproved schedule, `2` usage
//! or I/O error — CI treats anything non-zero as blocking.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mvcom_lint::{explore, lint_workspace, InterleaveConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" | "lint" | "interleave" if command.is_none() => {
                command = Some(arg.clone());
            }
            "--root" => match iter.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }
    let Some(command) = command else {
        return usage("missing subcommand");
    };
    let root = root.unwrap_or_else(default_root);

    let mut failed = false;
    if command == "check" || command == "lint" {
        match lint_workspace(&root) {
            Ok(report) => {
                for finding in &report.findings {
                    println!("{finding}");
                }
                println!(
                    "mvcom-lint: {} file(s) scanned, {} finding(s)",
                    report.files_scanned,
                    report.findings.len()
                );
                failed |= !report.clean();
            }
            Err(err) => {
                eprintln!("mvcom-lint: cannot walk {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if command == "check" || command == "interleave" {
        let config = InterleaveConfig::default();
        let report = explore(&config);
        match &report.violation {
            None => println!(
                "mvcom-lint: RESET-bus interleavings proven safe \
                 ({} threads x {} resets, {} states)",
                report.config_threads, report.config_rounds, report.states_explored
            ),
            Some(violation) => {
                println!("mvcom-lint: RESET-bus violation: {violation}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: `--root`, else two levels above this crate when
/// running from a checkout (`cargo run -p mvcom-lint`), else `.`.
fn default_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from);
    match compiled {
        Some(p) if p.join("Cargo.toml").is_file() => p,
        _ => PathBuf::from("."),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mvcom-lint: {problem}\n\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
mvcom-lint: workspace-native static analysis for MVCom

USAGE:
    mvcom-lint <check|lint|interleave> [--root PATH]

SUBCOMMANDS:
    check       lexical lints (D1/P1/F1/T1) + RESET-bus interleaving proof
    lint        lexical lints only
    interleave  exhaustive RESET-bus interleaving proof only

OPTIONS:
    --root PATH workspace root to scan (default: the enclosing checkout)
    -h, --help  this help
";
