//! The `mvcom-lint` binary.
//!
//! ```text
//! mvcom-lint check [--root PATH] [--rules LIST] [--model NAME]
//!                                  # lints + interleaving proofs
//! mvcom-lint lint  [--root PATH] [--rules LIST]
//!                                  # lexical + region lints only
//! mvcom-lint model [--model NAME]  # interleaving proofs only
//! mvcom-lint interleave            # RESET-bus proof only (alias)
//! ```
//!
//! `--rules` takes `all` or a comma list (`C1,C3,W1`); `--model` takes
//! `all`, `none`, or one of `reset-bus`, `merge`, `deferred`. Every model
//! run also explores its deliberately broken twin and fails if the twin
//! is *not* caught — a proof is only trusted while the prover still has
//! teeth.
//!
//! Exit codes: `0` clean, `1` findings, a disproved schedule, or an
//! uncaught twin, `2` usage or I/O error — CI treats anything non-zero
//! as blocking.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mvcom_lint::model::{deferred, merge};
use mvcom_lint::{explore, lint_workspace, InterleaveConfig, RuleSelection};

/// The shipped interleaving models, as `--model` understands them.
const MODEL_NAMES: [&str; 3] = ["reset-bus", "merge", "deferred"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = None;
    let mut rules = RuleSelection::all();
    let mut models: Option<Vec<&str>> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" | "lint" | "model" | "interleave" if command.is_none() => {
                command = Some(arg.clone());
            }
            "--root" => match iter.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--rules" => match iter.next() {
                Some(list) => match RuleSelection::parse(list) {
                    Ok(sel) => rules = sel,
                    Err(err) => return usage(&err),
                },
                None => return usage("--rules needs `all` or a comma-separated rule list"),
            },
            "--model" => match iter.next() {
                Some(name) => match parse_models(name) {
                    Ok(list) => models = Some(list),
                    Err(err) => return usage(&err),
                },
                None => return usage("--model needs `all`, `none`, or a model name"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }
    let Some(command) = command else {
        return usage("missing subcommand");
    };
    let root = root.unwrap_or_else(default_root);

    let mut failed = false;
    if command == "check" || command == "lint" {
        match lint_workspace(&root) {
            Ok(mut report) => {
                report.findings.retain(|f| rules.contains(f.rule));
                for finding in &report.findings {
                    println!("{finding}");
                }
                println!(
                    "mvcom-lint: {} file(s) scanned, {} finding(s)",
                    report.files_scanned,
                    report.findings.len()
                );
                failed |= !report.clean();
            }
            Err(err) => {
                eprintln!("mvcom-lint: cannot walk {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    let run_models: &[&str] = match command.as_str() {
        "interleave" => &["reset-bus"],
        "check" | "model" => match &models {
            Some(list) => list,
            None => &MODEL_NAMES,
        },
        _ => &[],
    };
    for name in run_models {
        failed |= !run_model(name);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_models(name: &str) -> Result<Vec<&'static str>, String> {
    match name {
        "all" => Ok(MODEL_NAMES.to_vec()),
        "none" => Ok(Vec::new()),
        other => MODEL_NAMES
            .iter()
            .find(|m| **m == other)
            .map(|m| vec![*m])
            .ok_or_else(|| {
                format!(
                    "unknown model `{other}` (expected all, none, {})",
                    MODEL_NAMES.join(", ")
                )
            }),
    }
}

/// Explores one shipped model at its default bounds, then its broken
/// twin. Prints one summary line per model; returns `false` when the
/// shipped protocol has a bad schedule *or* the twin goes uncaught.
fn run_model(name: &str) -> bool {
    match name {
        "reset-bus" => {
            let config = InterleaveConfig::default();
            let report = explore(&config);
            if let Some(violation) = &report.violation {
                println!("mvcom-lint: RESET-bus violation: {violation}");
                return false;
            }
            println!(
                "mvcom-lint: model reset-bus proven safe \
                 ({} threads x {} resets, {} states)",
                report.config_threads, report.config_rounds, report.states_explored
            );
            let twin = explore(&InterleaveConfig {
                model: mvcom_lint::BusModel::SplitRmw,
                ..config
            });
            twin_caught("reset-bus", "split-rmw", twin.violation.as_ref())
        }
        "merge" => {
            let config = merge::MergeConfig::default();
            let result = merge::explore(&config);
            if let Some(violation) = &result.violation {
                println!("mvcom-lint: run_tasks merge violation: {violation}");
                return false;
            }
            println!(
                "mvcom-lint: model merge proven safe \
                 ({} workers x {} tasks, {} states)",
                config.workers, config.tasks, result.states_explored
            );
            let twin = merge::explore(&merge::MergeConfig {
                model: merge::MergeModel::PushOrder,
                ..config
            });
            twin_caught("merge", "push-order", twin.violation.as_ref())
        }
        "deferred" => {
            let config = deferred::ObsConfig::default();
            let result = deferred::explore(&config);
            if let Some(violation) = &result.violation {
                println!("mvcom-lint: Obs deferred-replay violation: {violation}");
                return false;
            }
            println!(
                "mvcom-lint: model deferred proven safe \
                 ({} workers x {} tasks x {} events, {} states)",
                config.workers, config.tasks, config.events, result.states_explored
            );
            let twin = deferred::explore(&deferred::ObsConfig {
                model: deferred::ObsModel::DirectEmit,
                ..config
            });
            twin_caught("deferred", "direct-emit", twin.violation.as_ref())
        }
        _ => unreachable!("parse_models only yields MODEL_NAMES"),
    }
}

fn twin_caught(model: &str, twin: &str, violation: Option<&mvcom_lint::Violation>) -> bool {
    match violation {
        Some(v) => {
            println!(
                "mvcom-lint: model {model}: {twin} twin caught ({}, schedule of {} steps)",
                v.invariant,
                v.schedule.len()
            );
            true
        }
        None => {
            println!(
                "mvcom-lint: model {model}: {twin} twin was NOT caught — \
                 the checker has lost its teeth"
            );
            false
        }
    }
}

/// The workspace root: `--root`, else two levels above this crate when
/// running from a checkout (`cargo run -p mvcom-lint`), else `.`.
fn default_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from);
    match compiled {
        Some(p) if p.join("Cargo.toml").is_file() => p,
        _ => PathBuf::from("."),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("mvcom-lint: {problem}\n\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
mvcom-lint: workspace-native static analysis for MVCom

USAGE:
    mvcom-lint <check|lint|model|interleave> [OPTIONS]

SUBCOMMANDS:
    check       lints (token + parallel-region rules) + interleaving proofs
    lint        lints only
    model       interleaving proofs only (each model + its broken twin)
    interleave  RESET-bus proof only (back-compat alias for --model reset-bus)

OPTIONS:
    --root PATH   workspace root to scan (default: the enclosing checkout)
    --rules LIST  `all` (default) or comma list, e.g. C1,C2,C3,C4,W1,U1
    --model NAME  `all` (default), `none`, reset-bus, merge, or deferred
    -h, --help    this help
";
