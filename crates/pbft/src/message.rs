//! The PBFT wire protocol.

use serde::{Deserialize, Serialize};

use mvcom_types::Hash32;

/// The protocol phase a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Leader's proposal carrying the block digest (phase 1).
    PrePrepare,
    /// Replica echo of the accepted digest (phase 2).
    Prepare,
    /// Replica commitment after seeing a prepare quorum (phase 3).
    Commit,
    /// Vote to depose the current leader.
    ViewChange,
    /// The new leader's announcement that `2f+1` view-change votes were
    /// collected; re-proposes in the new view.
    NewView,
}

/// One PBFT message.
///
/// Replica indices are committee-local (`0..n`), not global node ids; the
/// runner maps them onto network nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Message {
    /// Protocol phase.
    pub kind: MessageKind,
    /// The view this message belongs to (for `ViewChange`, the view being
    /// proposed).
    pub view: u64,
    /// The block digest under agreement (zero for `ViewChange`).
    pub digest: Hash32,
    /// Sender's committee-local replica index.
    pub from: u32,
}

impl Message {
    /// Approximate serialized size in bytes, used for bandwidth modelling:
    /// a pre-prepare carries the block body, the votes are headers only.
    pub fn wire_size(&self, block_bytes: usize) -> usize {
        match self.kind {
            MessageKind::PrePrepare | MessageKind::NewView => 96 + block_bytes,
            MessageKind::Prepare | MessageKind::Commit | MessageKind::ViewChange => 96,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_reflects_payload() {
        let pre = Message {
            kind: MessageKind::PrePrepare,
            view: 0,
            digest: Hash32::digest(b"x"),
            from: 0,
        };
        let prep = Message {
            kind: MessageKind::Prepare,
            ..pre
        };
        assert_eq!(pre.wire_size(1_000), 1_096);
        assert_eq!(prep.wire_size(1_000), 96);
    }

    #[test]
    fn serde_round_trip() {
        let msg = Message {
            kind: MessageKind::Commit,
            view: 3,
            digest: Hash32::digest(b"y"),
            from: 2,
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: Message = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }
}
