//! The per-node PBFT state machine.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use mvcom_types::Hash32;

use crate::message::{Message, MessageKind};

/// How a replica behaves — the failure-injection surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crashed / partitioned: never sends anything.
    Silent,
    /// Byzantine leader behaviour: proposes conflicting digests to
    /// different replicas (as a non-leader it behaves silently, the
    /// strongest safe-but-unhelpful strategy).
    Equivocate,
}

/// Where an outbound message goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Broadcast to every replica (including the sender's own handler).
    All,
    /// One specific replica, by committee-local index.
    One(u32),
}

/// An outbound message queued by the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outbound {
    /// Recipient(s).
    pub target: Target,
    /// The message.
    pub message: Message,
}

/// One PBFT replica for a single-decision instance.
///
/// Quorum rules follow Castro–Liskov with `n = 3f+1`:
/// * *prepared* after a valid pre-prepare plus `2f` matching prepares
///   from distinct replicas;
/// * *committed* after `2f+1` matching commits from distinct replicas.
#[derive(Debug, Clone)]
pub struct Replica {
    index: u32,
    n: u32,
    f: u32,
    behavior: Behavior,
    view: u64,
    /// Digest accepted from the current view's pre-prepare.
    accepted: Option<Hash32>,
    prepares: HashMap<(u64, Hash32), HashSet<u32>>,
    commits: HashMap<(u64, Hash32), HashSet<u32>>,
    view_votes: HashMap<u64, HashSet<u32>>,
    sent_proposal: HashSet<u64>,
    sent_prepare: HashSet<u64>,
    sent_commit: HashSet<u64>,
    sent_view_change: HashSet<u64>,
    committed: Option<Hash32>,
}

impl Replica {
    /// Creates replica `index` of a committee of `n = 3f+1` members.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `index >= n`.
    pub fn new(index: u32, n: u32, behavior: Behavior) -> Replica {
        assert!(n >= 4, "PBFT needs n >= 4 (got {n})");
        assert!(index < n, "replica index {index} out of range {n}");
        Replica {
            index,
            n,
            f: (n - 1) / 3,
            behavior,
            view: 0,
            accepted: None,
            prepares: HashMap::new(),
            commits: HashMap::new(),
            view_votes: HashMap::new(),
            sent_proposal: HashSet::new(),
            sent_prepare: HashSet::new(),
            sent_commit: HashSet::new(),
            sent_view_change: HashSet::new(),
            committed: None,
        }
    }

    /// This replica's committee-local index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> u32 {
        self.f
    }

    /// The digest this replica has committed, if any.
    pub fn committed(&self) -> Option<Hash32> {
        self.committed
    }

    /// The replica's configured behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// The leader of view `v` is replica `v mod n`.
    pub fn leader_of(&self, view: u64) -> u32 {
        (view % u64::from(self.n)) as u32
    }

    /// `true` if this replica leads its current view.
    pub fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.index
    }

    /// Leader action: propose `digest` in the current view.
    ///
    /// An [`Behavior::Equivocate`] leader emits *per-recipient* conflicting
    /// digests (recipient-parity flip), a [`Behavior::Silent`] leader emits
    /// nothing.
    pub fn propose(&mut self, digest: Hash32) -> Vec<Outbound> {
        if !self.is_leader() {
            return Vec::new();
        }
        // At most one proposal per view (the runner may re-poll leaders).
        if !self.sent_proposal.insert(self.view) {
            return Vec::new();
        }
        match self.behavior {
            Behavior::Honest => vec![Outbound {
                target: Target::All,
                message: Message {
                    kind: MessageKind::PrePrepare,
                    view: self.view,
                    digest,
                    from: self.index,
                },
            }],
            Behavior::Silent => Vec::new(),
            Behavior::Equivocate => (0..self.n)
                .map(|to| {
                    let mut twisted = digest;
                    if to % 2 == 1 {
                        twisted.0[0] ^= 0xFF;
                    }
                    Outbound {
                        target: Target::One(to),
                        message: Message {
                            kind: MessageKind::PrePrepare,
                            view: self.view,
                            digest: twisted,
                            from: self.index,
                        },
                    }
                })
                .collect(),
        }
    }

    /// Local timeout: vote to depose the current leader.
    pub fn on_timeout(&mut self) -> Vec<Outbound> {
        if self.committed.is_some() || self.behavior != Behavior::Honest {
            return Vec::new();
        }
        let next_view = self.view + 1;
        if !self.sent_view_change.insert(next_view) {
            return Vec::new();
        }
        vec![Outbound {
            target: Target::All,
            message: Message {
                kind: MessageKind::ViewChange,
                view: next_view,
                digest: Hash32::ZERO,
                from: self.index,
            },
        }]
    }

    /// Feeds one delivered message into the state machine, returning any
    /// outbound messages it triggers.
    pub fn on_message(&mut self, msg: Message) -> Vec<Outbound> {
        if self.behavior != Behavior::Honest || self.committed.is_some() {
            // Silent and equivocating replicas never *respond*; the
            // equivocator only misbehaves when leading (see `propose`).
            return Vec::new();
        }
        match msg.kind {
            MessageKind::PrePrepare | MessageKind::NewView => self.on_pre_prepare(msg),
            MessageKind::Prepare => self.on_prepare(msg),
            MessageKind::Commit => self.on_commit(msg),
            MessageKind::ViewChange => self.on_view_change(msg),
        }
    }

    fn on_pre_prepare(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view != self.view || msg.from != self.leader_of(self.view) {
            return Vec::new();
        }
        if self.accepted.is_some() {
            return Vec::new(); // at most one accepted proposal per view
        }
        self.accepted = Some(msg.digest);
        if !self.sent_prepare.insert(self.view) {
            return Vec::new();
        }
        let prepare = Message {
            kind: MessageKind::Prepare,
            view: self.view,
            digest: msg.digest,
            from: self.index,
        };
        // Count our own prepare immediately.
        let mut out = self.on_prepare(prepare);
        out.push(Outbound {
            target: Target::All,
            message: prepare,
        });
        out
    }

    fn on_prepare(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view != self.view {
            return Vec::new();
        }
        let votes = self.prepares.entry((msg.view, msg.digest)).or_default();
        votes.insert(msg.from);
        let enough = votes.len() as u32 >= 2 * self.f;
        let matches_accepted = self.accepted == Some(msg.digest);
        if enough && matches_accepted && self.sent_commit.insert(self.view) {
            let commit = Message {
                kind: MessageKind::Commit,
                view: self.view,
                digest: msg.digest,
                from: self.index,
            };
            let mut out = self.on_commit(commit);
            out.push(Outbound {
                target: Target::All,
                message: commit,
            });
            return out;
        }
        Vec::new()
    }

    fn on_commit(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view != self.view {
            return Vec::new();
        }
        let votes = self.commits.entry((msg.view, msg.digest)).or_default();
        votes.insert(msg.from);
        if votes.len() as u32 > 2 * self.f && self.accepted == Some(msg.digest) {
            self.committed = Some(msg.digest);
        }
        Vec::new()
    }

    fn on_view_change(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view <= self.view {
            return Vec::new();
        }
        let votes = self.view_votes.entry(msg.view).or_default();
        votes.insert(msg.from);
        if votes.len() as u32 > 2 * self.f {
            // Enter the new view; state for the old view is abandoned
            // (single-decision instance: nothing prepared carries over
            // unless we had committed, which short-circuits earlier).
            self.view = msg.view;
            self.accepted = None;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest() -> Hash32 {
        Hash32::digest(b"block")
    }

    /// Delivers `msg` to every replica, collecting the responses.
    fn deliver_all(replicas: &mut [Replica], msg: Message) -> Vec<Outbound> {
        replicas
            .iter_mut()
            .flat_map(|r| r.on_message(msg))
            .collect()
    }

    /// Runs a full synchronous round-based exchange until quiescence.
    fn run_to_quiescence(replicas: &mut [Replica], initial: Vec<Outbound>) {
        let mut queue: Vec<Outbound> = initial;
        let mut rounds = 0;
        while !queue.is_empty() {
            rounds += 1;
            assert!(rounds < 100, "protocol did not quiesce");
            let mut next = Vec::new();
            for out in queue.drain(..) {
                match out.target {
                    Target::All => next.extend(deliver_all(replicas, out.message)),
                    Target::One(idx) => next.extend(replicas[idx as usize].on_message(out.message)),
                }
            }
            queue = next;
        }
    }

    fn committee(n: u32, behaviors: &[(u32, Behavior)]) -> Vec<Replica> {
        (0..n)
            .map(|i| {
                let b = behaviors
                    .iter()
                    .find(|(idx, _)| *idx == i)
                    .map(|(_, b)| *b)
                    .unwrap_or(Behavior::Honest);
                Replica::new(i, n, b)
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn rejects_tiny_committees() {
        Replica::new(0, 3, Behavior::Honest);
    }

    #[test]
    fn leader_rotation() {
        let r = Replica::new(0, 4, Behavior::Honest);
        assert_eq!(r.leader_of(0), 0);
        assert_eq!(r.leader_of(1), 1);
        assert_eq!(r.leader_of(4), 0);
        assert!(r.is_leader());
        assert_eq!(r.fault_threshold(), 1);
    }

    #[test]
    fn all_honest_replicas_commit_same_digest() {
        let mut replicas = committee(4, &[]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        for r in &replicas {
            assert_eq!(r.committed(), Some(digest()), "replica {}", r.index());
        }
    }

    #[test]
    fn commits_with_f_silent_replicas() {
        // n=7, f=2: two silent followers must not block commitment.
        let mut replicas = committee(7, &[(5, Behavior::Silent), (6, Behavior::Silent)]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        let committed = replicas
            .iter()
            .filter(|r| r.committed() == Some(digest()))
            .count();
        assert!(committed >= 5, "only {committed} replicas committed");
    }

    #[test]
    fn does_not_commit_beyond_f_failures() {
        // n=4, f=1, but TWO silent replicas: quorum 2f+1 = 3 commits is
        // unreachable with only 2 honest participants.
        let mut replicas = committee(4, &[(2, Behavior::Silent), (3, Behavior::Silent)]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        assert!(replicas.iter().all(|r| r.committed().is_none()));
    }

    #[test]
    fn equivocating_leader_cannot_split_honest_replicas() {
        // n=4 with an equivocating leader: safety demands no two honest
        // replicas commit different digests.
        let mut replicas = committee(4, &[(0, Behavior::Equivocate)]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        let committed: Vec<Hash32> = replicas
            .iter()
            .filter(|r| r.behavior() == Behavior::Honest)
            .filter_map(|r| r.committed())
            .collect();
        let unique: std::collections::HashSet<Hash32> = committed.iter().copied().collect();
        assert!(
            unique.len() <= 1,
            "honest replicas committed conflicting digests: {unique:?}"
        );
    }

    #[test]
    fn view_change_reaches_quorum_and_advances_view() {
        let mut replicas = committee(4, &[(0, Behavior::Silent)]);
        // Leader 0 is silent; every honest replica times out.
        let mut msgs: Vec<Outbound> = Vec::new();
        for r in replicas.iter_mut() {
            msgs.extend(r.on_timeout());
        }
        assert_eq!(msgs.len(), 3); // replicas 1..3 vote
        run_to_quiescence(&mut replicas, msgs);
        for r in replicas.iter().filter(|r| r.behavior() == Behavior::Honest) {
            assert_eq!(r.view(), 1, "replica {} stuck in view 0", r.index());
        }
        // New leader (replica 1) proposes and the protocol completes.
        let proposal = replicas[1].propose(digest());
        assert!(!proposal.is_empty());
        run_to_quiescence(&mut replicas, proposal);
        for r in replicas.iter().filter(|r| r.behavior() == Behavior::Honest) {
            assert_eq!(r.committed(), Some(digest()));
        }
    }

    #[test]
    fn timeout_after_commit_is_a_no_op() {
        let mut replicas = committee(4, &[]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        assert!(replicas[1].on_timeout().is_empty());
    }

    #[test]
    fn stale_view_messages_are_ignored() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        let stale = Message {
            kind: MessageKind::PrePrepare,
            view: 5,
            digest: digest(),
            from: 1,
        };
        assert!(r.on_message(stale).is_empty());
        assert_eq!(r.committed(), None);
    }

    #[test]
    fn pre_prepare_from_non_leader_rejected() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        let forged = Message {
            kind: MessageKind::PrePrepare,
            view: 0,
            digest: digest(),
            from: 2, // leader of view 0 is replica 0
        };
        assert!(r.on_message(forged).is_empty());
    }

    #[test]
    fn second_pre_prepare_in_view_is_ignored() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        let first = Message {
            kind: MessageKind::PrePrepare,
            view: 0,
            digest: digest(),
            from: 0,
        };
        let second = Message {
            digest: Hash32::digest(b"other"),
            ..first
        };
        let out1 = r.on_message(first);
        assert!(!out1.is_empty());
        let out2 = r.on_message(second);
        assert!(out2.is_empty());
    }
}
