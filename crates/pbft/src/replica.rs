//! The per-node PBFT state machine.
//!
//! Quorum votes are tracked in fixed-width bitmask voter sets
//! (`VoterMask`) instead of hash maps: a committee of `n ≤ 128` fits in
//! one `u128`, so recording a vote is one OR and a quorum check is one
//! popcount — no hashing, no heap traffic — which matters because the
//! simulation layer delivers O(n²) votes per consensus instance. Larger
//! committees fall back to a word vector with identical semantics. The
//! original hash-map implementation survives as
//! [`ReferenceReplica`](crate::reference::ReferenceReplica), and
//! `tests/bitmask_differential.rs` checks the two machines agree
//! message-for-message on randomized schedules.

use serde::{Deserialize, Serialize};

use mvcom_types::Hash32;

use crate::message::{Message, MessageKind};

/// How a replica behaves — the failure-injection surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crashed / partitioned: never sends anything.
    Silent,
    /// Byzantine leader behaviour: proposes conflicting digests to
    /// different replicas (as a non-leader it behaves silently, the
    /// strongest safe-but-unhelpful strategy).
    Equivocate,
}

/// Where an outbound message goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Broadcast to every replica (including the sender's own handler).
    All,
    /// One specific replica, by committee-local index.
    One(u32),
}

/// An outbound message queued by the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outbound {
    /// Recipient(s).
    pub target: Target,
    /// The message.
    pub message: Message,
}

/// A set of committee-local voter indices with O(1) insert and popcount
/// cardinality.
///
/// Committees of `n ≤ 128` — every committee size the paper's evaluation
/// produces — use the inline `u128`; anything larger spills to a word
/// vector with the same semantics (covered by the differential test's
/// `n > 128` schedules).
#[derive(Debug, Clone, PartialEq, Eq)]
enum VoterMask {
    /// Inline mask for committees of at most 128 replicas.
    Small(u128),
    /// Word-vector fallback, bit `i` at `words[i / 64] >> (i % 64)`.
    Large(Vec<u64>),
}

impl VoterMask {
    /// An empty mask sized for a committee of `n`.
    fn new(n: u32) -> VoterMask {
        if n <= 128 {
            VoterMask::Small(0)
        } else {
            VoterMask::Large(vec![0; (n as usize).div_ceil(64)])
        }
    }

    /// Records voter `i` (idempotent).
    fn insert(&mut self, i: u32) {
        match self {
            VoterMask::Small(bits) => *bits |= 1u128 << i,
            VoterMask::Large(words) => words[(i / 64) as usize] |= 1u64 << (i % 64),
        }
    }

    /// Number of distinct voters recorded.
    fn count(&self) -> u32 {
        match self {
            VoterMask::Small(bits) => bits.count_ones(),
            VoterMask::Large(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }
}

/// Records `from`'s vote for `digest` in a per-digest tally list and
/// returns the digest's updated vote count. A view sees at most two
/// distinct digests (one honest, one equivocated), so a linear scan beats
/// any map.
fn tally(entries: &mut Vec<(Hash32, VoterMask)>, n: u32, digest: Hash32, from: u32) -> u32 {
    let slot = match entries.iter().position(|(d, _)| *d == digest) {
        Some(i) => i,
        None => {
            entries.push((digest, VoterMask::new(n)));
            entries.len() - 1
        }
    };
    entries[slot].1.insert(from);
    entries[slot].1.count()
}

/// Monotone replacement for the old per-view `HashSet<u64>` sent-guards:
/// a replica's view never decreases, so "not yet sent in view `v`" is
/// exactly "`v` is above the watermark". Returns `true` if the send is
/// fresh and records it.
fn mark_sent(watermark: &mut Option<u64>, view: u64) -> bool {
    if watermark.is_none_or(|last| view > last) {
        *watermark = Some(view);
        true
    } else {
        false
    }
}

/// One PBFT replica for a single-decision instance.
///
/// Quorum rules follow Castro–Liskov with `n = 3f+1`:
/// * *prepared* after a valid pre-prepare plus `2f` matching prepares
///   from distinct replicas;
/// * *committed* after `2f+1` matching commits from distinct replicas.
///
/// Votes are tallied in `VoterMask`s for the *current* view only —
/// stale-view messages are dropped before tallying and views are
/// monotone, so per-view state can be cleared on view entry. Messages
/// whose `from` is outside `0..n` are dropped outright (the reference
/// implementation counted such forged indices as distinct voters; see
/// `tests/bitmask_differential.rs` for the in-range equivalence).
#[derive(Debug, Clone)]
pub struct Replica {
    index: u32,
    n: u32,
    f: u32,
    behavior: Behavior,
    view: u64,
    /// Digest accepted from the current view's pre-prepare.
    accepted: Option<Hash32>,
    /// Prepare votes per digest, current view only.
    prepares: Vec<(Hash32, VoterMask)>,
    /// Commit votes per digest, current view only.
    commits: Vec<(Hash32, VoterMask)>,
    /// View-change votes for views above the current one.
    view_votes: Vec<(u64, VoterMask)>,
    sent_proposal: Option<u64>,
    sent_prepare: Option<u64>,
    sent_commit: Option<u64>,
    sent_view_change: Option<u64>,
    committed: Option<Hash32>,
}

impl Replica {
    /// Creates replica `index` of a committee of `n = 3f+1` members.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `index >= n`.
    pub fn new(index: u32, n: u32, behavior: Behavior) -> Replica {
        assert!(n >= 4, "PBFT needs n >= 4 (got {n})");
        assert!(index < n, "replica index {index} out of range {n}");
        Replica {
            index,
            n,
            f: (n - 1) / 3,
            behavior,
            view: 0,
            accepted: None,
            // A view tallies at most two digests (honest + equivocated);
            // reserving them here keeps the vote path allocation-free.
            prepares: Vec::with_capacity(2),
            commits: Vec::with_capacity(2),
            view_votes: Vec::with_capacity(2),
            sent_proposal: None,
            sent_prepare: None,
            sent_commit: None,
            sent_view_change: None,
            committed: None,
        }
    }

    /// This replica's committee-local index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> u32 {
        self.f
    }

    /// The digest this replica has committed, if any.
    pub fn committed(&self) -> Option<Hash32> {
        self.committed
    }

    /// The replica's configured behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// The leader of view `v` is replica `v mod n`.
    pub fn leader_of(&self, view: u64) -> u32 {
        (view % u64::from(self.n)) as u32
    }

    /// `true` if this replica leads its current view.
    pub fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.index
    }

    /// Leader action: propose `digest` in the current view.
    ///
    /// An [`Behavior::Equivocate`] leader emits *per-recipient* conflicting
    /// digests (recipient-parity flip), a [`Behavior::Silent`] leader emits
    /// nothing.
    pub fn propose(&mut self, digest: Hash32) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.propose_into(digest, &mut out);
        out
    }

    /// Allocation-free [`Replica::propose`]: appends to `out` instead of
    /// returning a fresh vector. Hot loops pass a reused buffer.
    pub fn propose_into(&mut self, digest: Hash32, out: &mut Vec<Outbound>) {
        if !self.is_leader() {
            return;
        }
        // At most one proposal per view (the runner may re-poll leaders).
        if !mark_sent(&mut self.sent_proposal, self.view) {
            return;
        }
        match self.behavior {
            Behavior::Honest => out.push(Outbound {
                target: Target::All,
                message: Message {
                    kind: MessageKind::PrePrepare,
                    view: self.view,
                    digest,
                    from: self.index,
                },
            }),
            Behavior::Silent => {}
            Behavior::Equivocate => out.extend((0..self.n).map(|to| {
                let mut twisted = digest;
                if to % 2 == 1 {
                    twisted.0[0] ^= 0xFF;
                }
                Outbound {
                    target: Target::One(to),
                    message: Message {
                        kind: MessageKind::PrePrepare,
                        view: self.view,
                        digest: twisted,
                        from: self.index,
                    },
                }
            })),
        }
    }

    /// Local timeout: vote to depose the current leader.
    pub fn on_timeout(&mut self) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.on_timeout_into(&mut out);
        out
    }

    /// Allocation-free [`Replica::on_timeout`]: appends to `out`.
    pub fn on_timeout_into(&mut self, out: &mut Vec<Outbound>) {
        if self.committed.is_some() || self.behavior != Behavior::Honest {
            return;
        }
        let next_view = self.view + 1;
        if !mark_sent(&mut self.sent_view_change, next_view) {
            return;
        }
        out.push(Outbound {
            target: Target::All,
            message: Message {
                kind: MessageKind::ViewChange,
                view: next_view,
                digest: Hash32::ZERO,
                from: self.index,
            },
        });
    }

    /// Feeds one delivered message into the state machine, returning any
    /// outbound messages it triggers.
    pub fn on_message(&mut self, msg: Message) -> Vec<Outbound> {
        let mut out = Vec::new();
        self.on_message_into(msg, &mut out);
        out
    }

    /// Allocation-free [`Replica::on_message`]: appends any triggered
    /// messages to `out` (which is *not* cleared — callers reuse buffers).
    pub fn on_message_into(&mut self, msg: Message, out: &mut Vec<Outbound>) {
        if self.behavior != Behavior::Honest || self.committed.is_some() {
            // Silent and equivocating replicas never *respond*; the
            // equivocator only misbehaves when leading (see `propose`).
            return;
        }
        if msg.from >= self.n {
            return; // forged sender index — never counts as a voter
        }
        match msg.kind {
            MessageKind::PrePrepare | MessageKind::NewView => self.on_pre_prepare(msg, out),
            MessageKind::Prepare => self.on_prepare(msg, out),
            MessageKind::Commit => self.on_commit(msg),
            MessageKind::ViewChange => self.on_view_change(msg),
        }
    }

    fn on_pre_prepare(&mut self, msg: Message, out: &mut Vec<Outbound>) {
        if msg.view != self.view || msg.from != self.leader_of(self.view) {
            return;
        }
        if self.accepted.is_some() {
            return; // at most one accepted proposal per view
        }
        self.accepted = Some(msg.digest);
        if !mark_sent(&mut self.sent_prepare, self.view) {
            return;
        }
        let prepare = Message {
            kind: MessageKind::Prepare,
            view: self.view,
            digest: msg.digest,
            from: self.index,
        };
        // Count our own prepare immediately.
        self.on_prepare(prepare, out);
        out.push(Outbound {
            target: Target::All,
            message: prepare,
        });
    }

    fn on_prepare(&mut self, msg: Message, out: &mut Vec<Outbound>) {
        if msg.view != self.view {
            return;
        }
        let votes = tally(&mut self.prepares, self.n, msg.digest, msg.from);
        let enough = votes >= 2 * self.f;
        let matches_accepted = self.accepted == Some(msg.digest);
        if enough && matches_accepted && mark_sent(&mut self.sent_commit, self.view) {
            let commit = Message {
                kind: MessageKind::Commit,
                view: self.view,
                digest: msg.digest,
                from: self.index,
            };
            self.on_commit(commit);
            out.push(Outbound {
                target: Target::All,
                message: commit,
            });
        }
    }

    fn on_commit(&mut self, msg: Message) {
        if msg.view != self.view {
            return;
        }
        let votes = tally(&mut self.commits, self.n, msg.digest, msg.from);
        if votes > 2 * self.f && self.accepted == Some(msg.digest) {
            self.committed = Some(msg.digest);
        }
    }

    fn on_view_change(&mut self, msg: Message) {
        if msg.view <= self.view {
            return;
        }
        let slot = match self.view_votes.iter().position(|(v, _)| *v == msg.view) {
            Some(i) => i,
            None => {
                self.view_votes.push((msg.view, VoterMask::new(self.n)));
                self.view_votes.len() - 1
            }
        };
        self.view_votes[slot].1.insert(msg.from);
        if self.view_votes[slot].1.count() > 2 * self.f {
            // Enter the new view; state for the old view is abandoned
            // (single-decision instance: nothing prepared carries over
            // unless we had committed, which short-circuits earlier).
            // Views are monotone, so per-view tallies can be dropped —
            // stale-view messages never reach `tally`.
            self.view = msg.view;
            self.accepted = None;
            self.prepares.clear();
            self.commits.clear();
            let entered = self.view;
            self.view_votes.retain(|(v, _)| *v > entered);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest() -> Hash32 {
        Hash32::digest(b"block")
    }

    /// Delivers `msg` to every replica, collecting the responses.
    fn deliver_all(replicas: &mut [Replica], msg: Message) -> Vec<Outbound> {
        replicas
            .iter_mut()
            .flat_map(|r| r.on_message(msg))
            .collect()
    }

    /// Runs a full synchronous round-based exchange until quiescence.
    fn run_to_quiescence(replicas: &mut [Replica], initial: Vec<Outbound>) {
        let mut queue: Vec<Outbound> = initial;
        let mut rounds = 0;
        while !queue.is_empty() {
            rounds += 1;
            assert!(rounds < 100, "protocol did not quiesce");
            let mut next = Vec::new();
            for out in queue.drain(..) {
                match out.target {
                    Target::All => next.extend(deliver_all(replicas, out.message)),
                    Target::One(idx) => next.extend(replicas[idx as usize].on_message(out.message)),
                }
            }
            queue = next;
        }
    }

    fn committee(n: u32, behaviors: &[(u32, Behavior)]) -> Vec<Replica> {
        (0..n)
            .map(|i| {
                let b = behaviors
                    .iter()
                    .find(|(idx, _)| *idx == i)
                    .map(|(_, b)| *b)
                    .unwrap_or(Behavior::Honest);
                Replica::new(i, n, b)
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn rejects_tiny_committees() {
        Replica::new(0, 3, Behavior::Honest);
    }

    #[test]
    fn leader_rotation() {
        let r = Replica::new(0, 4, Behavior::Honest);
        assert_eq!(r.leader_of(0), 0);
        assert_eq!(r.leader_of(1), 1);
        assert_eq!(r.leader_of(4), 0);
        assert!(r.is_leader());
        assert_eq!(r.fault_threshold(), 1);
    }

    #[test]
    fn all_honest_replicas_commit_same_digest() {
        let mut replicas = committee(4, &[]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        for r in &replicas {
            assert_eq!(r.committed(), Some(digest()), "replica {}", r.index());
        }
    }

    #[test]
    fn commits_with_f_silent_replicas() {
        // n=7, f=2: two silent followers must not block commitment.
        let mut replicas = committee(7, &[(5, Behavior::Silent), (6, Behavior::Silent)]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        let committed = replicas
            .iter()
            .filter(|r| r.committed() == Some(digest()))
            .count();
        assert!(committed >= 5, "only {committed} replicas committed");
    }

    #[test]
    fn does_not_commit_beyond_f_failures() {
        // n=4, f=1, but TWO silent replicas: quorum 2f+1 = 3 commits is
        // unreachable with only 2 honest participants.
        let mut replicas = committee(4, &[(2, Behavior::Silent), (3, Behavior::Silent)]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        assert!(replicas.iter().all(|r| r.committed().is_none()));
    }

    #[test]
    fn equivocating_leader_cannot_split_honest_replicas() {
        // n=4 with an equivocating leader: safety demands no two honest
        // replicas commit different digests.
        let mut replicas = committee(4, &[(0, Behavior::Equivocate)]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        let committed: Vec<Hash32> = replicas
            .iter()
            .filter(|r| r.behavior() == Behavior::Honest)
            .filter_map(|r| r.committed())
            .collect();
        let unique: std::collections::HashSet<Hash32> = committed.iter().copied().collect();
        assert!(
            unique.len() <= 1,
            "honest replicas committed conflicting digests: {unique:?}"
        );
    }

    #[test]
    fn view_change_reaches_quorum_and_advances_view() {
        let mut replicas = committee(4, &[(0, Behavior::Silent)]);
        // Leader 0 is silent; every honest replica times out.
        let mut msgs: Vec<Outbound> = Vec::new();
        for r in replicas.iter_mut() {
            msgs.extend(r.on_timeout());
        }
        assert_eq!(msgs.len(), 3); // replicas 1..3 vote
        run_to_quiescence(&mut replicas, msgs);
        for r in replicas.iter().filter(|r| r.behavior() == Behavior::Honest) {
            assert_eq!(r.view(), 1, "replica {} stuck in view 0", r.index());
        }
        // New leader (replica 1) proposes and the protocol completes.
        let proposal = replicas[1].propose(digest());
        assert!(!proposal.is_empty());
        run_to_quiescence(&mut replicas, proposal);
        for r in replicas.iter().filter(|r| r.behavior() == Behavior::Honest) {
            assert_eq!(r.committed(), Some(digest()));
        }
    }

    #[test]
    fn timeout_after_commit_is_a_no_op() {
        let mut replicas = committee(4, &[]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        assert!(replicas[1].on_timeout().is_empty());
    }

    #[test]
    fn stale_view_messages_are_ignored() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        let stale = Message {
            kind: MessageKind::PrePrepare,
            view: 5,
            digest: digest(),
            from: 1,
        };
        assert!(r.on_message(stale).is_empty());
        assert_eq!(r.committed(), None);
    }

    #[test]
    fn pre_prepare_from_non_leader_rejected() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        let forged = Message {
            kind: MessageKind::PrePrepare,
            view: 0,
            digest: digest(),
            from: 2, // leader of view 0 is replica 0
        };
        assert!(r.on_message(forged).is_empty());
    }

    #[test]
    fn second_pre_prepare_in_view_is_ignored() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        let first = Message {
            kind: MessageKind::PrePrepare,
            view: 0,
            digest: digest(),
            from: 0,
        };
        let second = Message {
            digest: Hash32::digest(b"other"),
            ..first
        };
        let out1 = r.on_message(first);
        assert!(!out1.is_empty());
        let out2 = r.on_message(second);
        assert!(out2.is_empty());
    }

    #[test]
    fn out_of_range_sender_is_dropped() {
        let mut r = Replica::new(1, 4, Behavior::Honest);
        // Seat the pre-prepare so prepares are being tallied.
        let pre = Message {
            kind: MessageKind::PrePrepare,
            view: 0,
            digest: digest(),
            from: 0,
        };
        assert!(!r.on_message(pre).is_empty());
        // Two forged prepares from indices outside 0..4 must not count
        // toward the 2f = 2 prepare quorum (a commit would be emitted).
        for forged_from in [4, 200] {
            let forged = Message {
                kind: MessageKind::Prepare,
                view: 0,
                digest: digest(),
                from: forged_from,
            };
            assert!(r.on_message(forged).is_empty());
        }
    }

    #[test]
    fn large_committee_uses_word_fallback_and_commits() {
        // n = 130 > 128 exercises VoterMask::Large end to end.
        let mut replicas = committee(130, &[]);
        let proposal = replicas[0].propose(digest());
        run_to_quiescence(&mut replicas, proposal);
        for r in &replicas {
            assert_eq!(r.committed(), Some(digest()), "replica {}", r.index());
        }
    }

    #[test]
    fn voter_mask_counts_distinct_voters() {
        for n in [4, 128, 129, 200] {
            let mut mask = VoterMask::new(n);
            assert_eq!(mask.count(), 0);
            mask.insert(0);
            mask.insert(n - 1);
            mask.insert(0); // idempotent
            assert_eq!(mask.count(), 2, "n={n}");
        }
    }
}
