//! The original hash-map based replica, kept as an executable spec.
//!
//! [`ReferenceReplica`] is the pre-optimization [`Replica`](crate::Replica)
//! implementation, verbatim: quorum votes tracked in
//! `HashMap<(view, digest), HashSet<from>>` and sent-guards in per-view
//! `HashSet<u64>`s. The production state machine replaced those with
//! fixed-width bitmask voter sets and monotone watermarks (see
//! `DESIGN.md` §9); this copy stays behind so that
//!
//! * `tests/bitmask_differential.rs` can drive both machines with the same
//!   randomized message schedules and assert output equality
//!   message-for-message, and
//! * the `epoch_sim` benchmark can measure the fast path against the exact
//!   historical baseline without checking out an old commit.
//!
//! Apart from the struct name, the code is intentionally identical to the
//! pre-fast-path `replica.rs`; do not "improve" it — its value is being
//! frozen.

use std::collections::{HashMap, HashSet};

use mvcom_types::Hash32;

use crate::message::{Message, MessageKind};
use crate::replica::{Behavior, Outbound, Target};

/// The pre-optimization PBFT replica (see the module docs).
///
/// Same quorum rules as [`Replica`](crate::Replica): *prepared* after a
/// valid pre-prepare plus `2f` matching prepares, *committed* after `2f+1`
/// matching commits.
#[derive(Debug, Clone)]
pub struct ReferenceReplica {
    index: u32,
    n: u32,
    f: u32,
    behavior: Behavior,
    view: u64,
    /// Digest accepted from the current view's pre-prepare.
    accepted: Option<Hash32>,
    prepares: HashMap<(u64, Hash32), HashSet<u32>>,
    commits: HashMap<(u64, Hash32), HashSet<u32>>,
    view_votes: HashMap<u64, HashSet<u32>>,
    sent_proposal: HashSet<u64>,
    sent_prepare: HashSet<u64>,
    sent_commit: HashSet<u64>,
    sent_view_change: HashSet<u64>,
    committed: Option<Hash32>,
}

impl ReferenceReplica {
    /// Creates replica `index` of a committee of `n = 3f+1` members.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `index >= n`.
    pub fn new(index: u32, n: u32, behavior: Behavior) -> ReferenceReplica {
        assert!(n >= 4, "PBFT needs n >= 4 (got {n})");
        assert!(index < n, "replica index {index} out of range {n}");
        ReferenceReplica {
            index,
            n,
            f: (n - 1) / 3,
            behavior,
            view: 0,
            accepted: None,
            prepares: HashMap::new(),
            commits: HashMap::new(),
            view_votes: HashMap::new(),
            sent_proposal: HashSet::new(),
            sent_prepare: HashSet::new(),
            sent_commit: HashSet::new(),
            sent_view_change: HashSet::new(),
            committed: None,
        }
    }

    /// This replica's committee-local index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The fault threshold `f`.
    pub fn fault_threshold(&self) -> u32 {
        self.f
    }

    /// The digest this replica has committed, if any.
    pub fn committed(&self) -> Option<Hash32> {
        self.committed
    }

    /// The replica's configured behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// The leader of view `v` is replica `v mod n`.
    pub fn leader_of(&self, view: u64) -> u32 {
        (view % u64::from(self.n)) as u32
    }

    /// `true` if this replica leads its current view.
    pub fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.index
    }

    /// Leader action: propose `digest` in the current view.
    pub fn propose(&mut self, digest: Hash32) -> Vec<Outbound> {
        if !self.is_leader() {
            return Vec::new();
        }
        // At most one proposal per view (the runner may re-poll leaders).
        if !self.sent_proposal.insert(self.view) {
            return Vec::new();
        }
        match self.behavior {
            Behavior::Honest => vec![Outbound {
                target: Target::All,
                message: Message {
                    kind: MessageKind::PrePrepare,
                    view: self.view,
                    digest,
                    from: self.index,
                },
            }],
            Behavior::Silent => Vec::new(),
            Behavior::Equivocate => (0..self.n)
                .map(|to| {
                    let mut twisted = digest;
                    if to % 2 == 1 {
                        twisted.0[0] ^= 0xFF;
                    }
                    Outbound {
                        target: Target::One(to),
                        message: Message {
                            kind: MessageKind::PrePrepare,
                            view: self.view,
                            digest: twisted,
                            from: self.index,
                        },
                    }
                })
                .collect(),
        }
    }

    /// Local timeout: vote to depose the current leader.
    pub fn on_timeout(&mut self) -> Vec<Outbound> {
        if self.committed.is_some() || self.behavior != Behavior::Honest {
            return Vec::new();
        }
        let next_view = self.view + 1;
        if !self.sent_view_change.insert(next_view) {
            return Vec::new();
        }
        vec![Outbound {
            target: Target::All,
            message: Message {
                kind: MessageKind::ViewChange,
                view: next_view,
                digest: Hash32::ZERO,
                from: self.index,
            },
        }]
    }

    /// Feeds one delivered message into the state machine, returning any
    /// outbound messages it triggers.
    pub fn on_message(&mut self, msg: Message) -> Vec<Outbound> {
        if self.behavior != Behavior::Honest || self.committed.is_some() {
            return Vec::new();
        }
        match msg.kind {
            MessageKind::PrePrepare | MessageKind::NewView => self.on_pre_prepare(msg),
            MessageKind::Prepare => self.on_prepare(msg),
            MessageKind::Commit => self.on_commit(msg),
            MessageKind::ViewChange => self.on_view_change(msg),
        }
    }

    fn on_pre_prepare(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view != self.view || msg.from != self.leader_of(self.view) {
            return Vec::new();
        }
        if self.accepted.is_some() {
            return Vec::new(); // at most one accepted proposal per view
        }
        self.accepted = Some(msg.digest);
        if !self.sent_prepare.insert(self.view) {
            return Vec::new();
        }
        let prepare = Message {
            kind: MessageKind::Prepare,
            view: self.view,
            digest: msg.digest,
            from: self.index,
        };
        // Count our own prepare immediately.
        let mut out = self.on_prepare(prepare);
        out.push(Outbound {
            target: Target::All,
            message: prepare,
        });
        out
    }

    fn on_prepare(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view != self.view {
            return Vec::new();
        }
        let votes = self.prepares.entry((msg.view, msg.digest)).or_default();
        votes.insert(msg.from);
        let enough = votes.len() as u32 >= 2 * self.f;
        let matches_accepted = self.accepted == Some(msg.digest);
        if enough && matches_accepted && self.sent_commit.insert(self.view) {
            let commit = Message {
                kind: MessageKind::Commit,
                view: self.view,
                digest: msg.digest,
                from: self.index,
            };
            let mut out = self.on_commit(commit);
            out.push(Outbound {
                target: Target::All,
                message: commit,
            });
            return out;
        }
        Vec::new()
    }

    fn on_commit(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view != self.view {
            return Vec::new();
        }
        let votes = self.commits.entry((msg.view, msg.digest)).or_default();
        votes.insert(msg.from);
        if votes.len() as u32 > 2 * self.f && self.accepted == Some(msg.digest) {
            self.committed = Some(msg.digest);
        }
        Vec::new()
    }

    fn on_view_change(&mut self, msg: Message) -> Vec<Outbound> {
        if msg.view <= self.view {
            return Vec::new();
        }
        let votes = self.view_votes.entry(msg.view).or_default();
        votes.insert(msg.from);
        if votes.len() as u32 > 2 * self.f {
            // Enter the new view; state for the old view is abandoned
            // (single-decision instance: nothing prepared carries over
            // unless we had committed, which short-circuits earlier).
            self.view = msg.view;
            self.accepted = None;
        }
        Vec::new()
    }
}
