//! Practical Byzantine Fault Tolerance for MVCom committees.
//!
//! Elastico's stage 3 (intra-committee consensus) and stage 4 (final
//! consensus) both run "a standard Byzantine protocol such as PBFT"
//! (Castro & Liskov, OSDI '99). This crate implements a single-decision
//! PBFT instance suitable for committee-level agreement on one shard block:
//!
//! * [`message`] — the wire protocol: `PRE-PREPARE`, `PREPARE`, `COMMIT`,
//!   `VIEW-CHANGE`, `NEW-VIEW`.
//! * [`replica`] — the per-node state machine with quorum tracking
//!   (`2f` matching prepares to *prepare*, `2f+1` matching commits to
//!   *commit*) and Byzantine behaviours for failure injection (silent
//!   replicas, an equivocating leader).
//! * [`runner`] — drives `n = 3f+1` replicas over a simulated
//!   [`Network`](mvcom_simnet::Network) with a deterministic event queue,
//!   including view changes when a faulty leader stalls the protocol.
//!
//! The measured three-phase latency of a run is exactly the
//! intra-committee consensus latency that enters MVCom's two-phase latency
//! `l_i`.
//!
//! # Example
//!
//! ```
//! use mvcom_pbft::runner::{PbftConfig, PbftRunner};
//! use mvcom_simnet::{rng, Network, NetworkConfig};
//! use mvcom_types::Hash32;
//!
//! # fn main() -> Result<(), mvcom_types::Error> {
//! let mut rng = rng::master(7);
//! let config = PbftConfig::new(4)?; // tolerates f = 1 fault
//! let network = Network::new(NetworkConfig::lan(4), rng::fork(&mut rng, "net"))?;
//! let result = PbftRunner::new(config, network, rng::fork(&mut rng, "pbft"))
//!     .run(Hash32::digest(b"shard block"))?;
//! assert!(result.committed);
//! assert!(result.latency.as_secs() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Unit tests may unwrap freely; library code goes through the P1 rule of
// `mvcom-lint` and the workspace `clippy::unwrap_used` deny set instead.
#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod message;
pub mod reference;
pub mod replica;
pub mod runner;

pub use message::{Message, MessageKind};
pub use reference::ReferenceReplica;
pub use replica::{Behavior, Replica};
pub use runner::{ConsensusResult, PbftConfig, PbftRunner};
