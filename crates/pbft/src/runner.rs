//! Driving a PBFT committee over the simulated network.

use serde::{Deserialize, Serialize};

use mvcom_obs::{Obs, Value};
use mvcom_simnet::event::Scheduler;
use mvcom_simnet::{LatencyModel, Network, SimRng};
use mvcom_types::{Error, Hash32, NodeId, Result, SimTime};

use crate::message::Message;
use crate::replica::{Behavior, Outbound, Replica, Target};

/// Configuration of one PBFT consensus run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PbftConfig {
    /// Committee size `n` (must be ≥ 4; tolerates `f = ⌊(n−1)/3⌋`).
    pub n: u32,
    /// Per-replica behaviours; defaults to all-honest. Index = replica.
    pub behaviors: Vec<Behavior>,
    /// Proposal (block body) size in bytes, for bandwidth modelling.
    pub block_bytes: usize,
    /// Per-replica verification delay applied when processing a proposal
    /// (models transaction verification cost).
    pub verify_delay: LatencyModel,
    /// View-change timeout: how long a replica waits in a view without
    /// committing before voting to depose the leader.
    pub view_timeout: SimTime,
    /// Give up entirely after this much simulated time.
    pub deadline: SimTime,
}

impl PbftConfig {
    /// A committee of `n` honest replicas with small verification cost and
    /// generous timeouts.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if `n < 4`.
    pub fn new(n: u32) -> Result<PbftConfig> {
        if n < 4 {
            return Err(Error::invalid_config(
                "n",
                format!("PBFT needs n >= 4, got {n}"),
            ));
        }
        Ok(PbftConfig {
            n,
            behaviors: vec![Behavior::Honest; n as usize],
            block_bytes: 64 * 1024,
            verify_delay: LatencyModel::Exponential { mean_secs: 2.0 },
            view_timeout: SimTime::from_secs(60.0),
            deadline: SimTime::from_secs(3_600.0),
        })
    }

    /// Overrides one replica's behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    #[must_use]
    pub fn with_behavior(mut self, index: u32, behavior: Behavior) -> PbftConfig {
        self.behaviors[index as usize] = behavior;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for `n < 4`, behaviour-list length
    /// mismatch, or non-positive timeouts.
    pub fn validate(&self) -> Result<()> {
        if self.n < 4 {
            return Err(Error::invalid_config("n", "PBFT needs n >= 4"));
        }
        if self.behaviors.len() != self.n as usize {
            return Err(Error::invalid_config(
                "behaviors",
                "must have exactly one behaviour per replica",
            ));
        }
        if self.view_timeout <= SimTime::ZERO {
            return Err(Error::invalid_config("view_timeout", "must be positive"));
        }
        if self.deadline <= SimTime::ZERO {
            return Err(Error::invalid_config("deadline", "must be positive"));
        }
        Ok(())
    }
}

/// The outcome of one consensus run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsensusResult {
    /// Whether `2f+1` replicas committed before the deadline.
    pub committed: bool,
    /// Time from proposal to the `2f+1`-th commitment (or the deadline on
    /// failure).
    pub latency: SimTime,
    /// The committed digest (zero if uncommitted).
    pub digest: Hash32,
    /// The view in which agreement was reached.
    pub final_view: u64,
    /// Total protocol messages delivered.
    pub messages_delivered: u64,
}

/// Internal simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    Deliver { to: u32, msg: Message },
    ViewTimeout { replica: u32, view: u64 },
}

/// Runs one PBFT instance over a simulated network.
pub struct PbftRunner {
    config: PbftConfig,
    network: Network,
    rng: SimRng,
    obs: Obs,
    label: String,
}

impl PbftRunner {
    /// Creates a runner over `network`; the first `config.n` network nodes
    /// host the replicas.
    pub fn new(config: PbftConfig, network: Network, rng: SimRng) -> PbftRunner {
        PbftRunner {
            config,
            network,
            rng,
            obs: Obs::off(),
            label: String::from("pbft"),
        }
    }

    /// Attaches a telemetry handle; `label` names this consensus instance
    /// on every `pbft_*` event (e.g. `pbft-committee-3`, `pbft-final`).
    /// Timestamps are simulated seconds from the instance's proposal.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs, label: &str) -> PbftRunner {
        self.obs = obs;
        self.label = label.to_string();
        self
    }

    fn emit_phase(&self, t: SimTime, view: u64, phase: &'static str) {
        self.obs.emit(
            "pbft_phase",
            t.as_secs(),
            &[
                ("label", Value::from(self.label.as_str())),
                ("view", Value::U64(view)),
                ("phase", Value::from(phase)),
            ],
        );
    }

    fn emit_done(&self, result: &ConsensusResult) {
        self.obs.emit(
            "pbft_done",
            result.latency.as_secs(),
            &[
                ("label", Value::from(self.label.as_str())),
                ("committed", Value::Bool(result.committed)),
                ("view", Value::U64(result.final_view)),
                ("latency", Value::F64(result.latency.as_secs())),
            ],
        );
        self.obs.incr(if result.committed {
            "pbft.commits"
        } else {
            "pbft.misses"
        });
    }

    /// Executes the protocol to agreement on `digest` (or to the deadline).
    ///
    /// The event loop does O(1) bookkeeping per delivery: a [`Message`]
    /// delivered to replica `to` can only change `to`'s state (a timeout
    /// never changes a view or commit status — it only emits votes), so
    /// the timeout re-arm, the leader re-propose, the view-change
    /// telemetry, and the commit-quorum count all inspect `to` alone
    /// instead of rescanning the whole committee. Deliveries are drained
    /// in same-instant batches ([`Scheduler::next_batch`]), which is
    /// order-identical to popping one event at a time.
    ///
    /// # Errors
    ///
    /// Configuration errors, or [`Error::Simulation`] if the network is
    /// smaller than the committee.
    pub fn run(mut self, digest: Hash32) -> Result<ConsensusResult> {
        self.config.validate()?;
        if self.network.len() < self.config.n {
            return Err(Error::simulation(format!(
                "network has {} nodes but the committee needs {}",
                self.network.len(),
                self.config.n
            )));
        }
        let n = self.config.n;
        let quorum = 2 * ((n - 1) / 3) + 1;
        let mut replicas: Vec<Replica> = (0..n)
            .map(|i| Replica::new(i, n, self.config.behaviors[i as usize]))
            .collect();
        // Steady state holds ≤ ~3 broadcasts per replica in flight
        // (prepare + commit + a proposal or view-change vote) plus one
        // timer each; pre-sizing keeps the heap from reallocating mid-run.
        let mut sched: Scheduler<Event> = Scheduler::with_capacity((3 * n * n + 2 * n) as usize);
        let mut delivered: u64 = 0;
        // Highest view for which each replica has an armed timeout timer.
        let mut armed_view: Vec<u64> = vec![0; n as usize];
        // Reused buffers: state-machine output and the current event batch.
        let mut out: Vec<Outbound> = Vec::with_capacity(n as usize + 2);
        let mut batch: Vec<Event> = Vec::with_capacity(n as usize);

        // Kick off: leader proposes, every replica arms its view-0 timer.
        // lint: allow(P1, validate() rejects n < 4, so replicas is non-empty)
        replicas[0].propose_into(digest, &mut out);
        self.emit_phase(SimTime::ZERO, 0, "pre-prepare");
        self.dispatch(&mut out, 0, &mut sched);
        // Highest view any replica has entered (for view-change telemetry),
        // whether a first local commit has been observed, and the running
        // number of locally-committed replicas (only `to` can flip).
        let mut top_view: u64 = 0;
        let mut locally_committed = false;
        let mut committed_count: u32 = 0;
        for i in 0..n {
            sched.schedule_in(
                self.config.view_timeout,
                Event::ViewTimeout {
                    replica: i,
                    view: 0,
                },
            );
        }

        while let Some(now) = sched.next_batch(&mut batch) {
            if now > self.config.deadline {
                break;
            }
            for event in batch.drain(..) {
                match event {
                    Event::Deliver { to, msg } => {
                        delivered += 1;
                        let replica = &mut replicas[to as usize];
                        let was_committed = replica.committed().is_some();
                        // Verification cost for proposals.
                        if matches!(
                            msg.kind,
                            crate::message::MessageKind::PrePrepare
                                | crate::message::MessageKind::NewView
                        ) {
                            // The verification delay is modelled as already
                            // elapsed: sample and fold into the outbound sends.
                            let delay = self.config.verify_delay.sample(&mut self.rng);
                            replica.on_message_into(msg, &mut out);
                            self.dispatch_delayed(&mut out, to, &mut sched, delay);
                        } else {
                            replica.on_message_into(msg, &mut out);
                            self.dispatch(&mut out, to, &mut sched);
                        }
                        // Only `to` can have changed state. Entering a new
                        // view re-arms its timeout — even when the new
                        // leader is faulty and never proposes, so
                        // successive view changes stay live.
                        let replica = &mut replicas[to as usize];
                        let view = replica.view();
                        if view > armed_view[to as usize] && replica.committed().is_none() {
                            armed_view[to as usize] = view;
                            sched.schedule_in(
                                self.config.view_timeout,
                                Event::ViewTimeout { replica: to, view },
                            );
                        }
                        // A view change that reached quorum makes the new
                        // leader re-propose (at most once per view).
                        if replica.is_leader() && view > 0 && replica.committed().is_none() {
                            replica.propose_into(digest, &mut out);
                            if !out.is_empty() {
                                self.emit_phase(now, view, "pre-prepare");
                                self.dispatch(&mut out, to, &mut sched);
                            }
                        }
                        while view > top_view {
                            // Report each abandoned view once, even if a
                            // replica skipped several views in one delivery.
                            self.obs.emit(
                                "pbft_view_change",
                                now.as_secs(),
                                &[
                                    ("label", Value::from(self.label.as_str())),
                                    ("view", Value::U64(top_view)),
                                ],
                            );
                            self.obs.incr("pbft.view_changes");
                            top_view += 1;
                        }
                        let newly_committed =
                            !was_committed && replicas[to as usize].committed().is_some();
                        if newly_committed {
                            committed_count += 1;
                            if !locally_committed {
                                // The first local commit is the earliest point
                                // at which a prepared certificate is visible.
                                locally_committed = true;
                                self.emit_phase(now, replicas[to as usize].view(), "prepared");
                            }
                        }
                        // Termination: quorum of commits.
                        if committed_count >= quorum {
                            let d = replicas
                                .iter()
                                .find_map(|r| r.committed())
                                // lint: allow(P1, committed_count >= quorum >= 1 guarantees a committed replica)
                                .expect("counted commits");
                            let final_view = replicas
                                .iter()
                                .find(|r| r.committed().is_some())
                                .map(|r| r.view())
                                .unwrap_or(0);
                            self.emit_phase(now, final_view, "committed");
                            let result = ConsensusResult {
                                committed: true,
                                latency: now,
                                digest: d,
                                final_view,
                                messages_delivered: delivered,
                            };
                            self.emit_done(&result);
                            return Ok(result);
                        }
                    }
                    Event::ViewTimeout { replica, view } => {
                        if replicas[replica as usize].view() == view
                            && replicas[replica as usize].committed().is_none()
                        {
                            replicas[replica as usize].on_timeout_into(&mut out);
                            self.dispatch(&mut out, replica, &mut sched);
                        }
                    }
                }
            }
        }
        let result = ConsensusResult {
            committed: false,
            latency: self.config.deadline,
            digest: Hash32::ZERO,
            final_view: replicas.iter().map(Replica::view).max().unwrap_or(0),
            messages_delivered: delivered,
        };
        self.emit_done(&result);
        Ok(result)
    }

    fn dispatch(&mut self, out: &mut Vec<Outbound>, from: u32, sched: &mut Scheduler<Event>) {
        self.dispatch_delayed(out, from, sched, SimTime::ZERO);
    }

    /// Schedules every queued [`Outbound`], draining (and thereby reusing)
    /// the caller's buffer.
    fn dispatch_delayed(
        &mut self,
        out: &mut Vec<Outbound>,
        from: u32,
        sched: &mut Scheduler<Event>,
        extra: SimTime,
    ) {
        let now = sched.now() + extra;
        for ob in out.drain(..) {
            let size = ob.message.wire_size(self.config.block_bytes);
            match ob.target {
                Target::All => {
                    for to in 0..self.config.n {
                        if to == from {
                            // Local self-delivery is immediate.
                            sched.schedule_at(
                                now,
                                Event::Deliver {
                                    to,
                                    msg: ob.message,
                                },
                            );
                            continue;
                        }
                        if let Some(arrival) =
                            self.network.send(NodeId(from), NodeId(to), size, now)
                        {
                            sched.schedule_at(
                                arrival,
                                Event::Deliver {
                                    to,
                                    msg: ob.message,
                                },
                            );
                        }
                    }
                }
                Target::One(to) => {
                    if to == from {
                        sched.schedule_at(
                            now,
                            Event::Deliver {
                                to,
                                msg: ob.message,
                            },
                        );
                    } else if let Some(arrival) =
                        self.network.send(NodeId(from), NodeId(to), size, now)
                    {
                        sched.schedule_at(
                            arrival,
                            Event::Deliver {
                                to,
                                msg: ob.message,
                            },
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcom_simnet::{rng, NetworkConfig};

    fn digest() -> Hash32 {
        Hash32::digest(b"shard")
    }

    fn run_with(config: PbftConfig, seed: u64) -> ConsensusResult {
        let mut master = rng::master(seed);
        let network =
            Network::new(NetworkConfig::lan(config.n), rng::fork(&mut master, "net")).unwrap();
        PbftRunner::new(config, network, rng::fork(&mut master, "pbft"))
            .run(digest())
            .unwrap()
    }

    #[test]
    fn honest_committee_commits_quickly() {
        let result = run_with(PbftConfig::new(4).unwrap(), 1);
        assert!(result.committed);
        assert_eq!(result.digest, digest());
        assert_eq!(result.final_view, 0);
        assert!(result.latency.as_secs() < 60.0);
        assert!(result.messages_delivered > 10);
    }

    #[test]
    fn larger_committee_commits() {
        let result = run_with(PbftConfig::new(13).unwrap(), 2);
        assert!(result.committed);
        assert_eq!(result.final_view, 0);
    }

    #[test]
    fn tolerates_f_silent_followers() {
        let config = PbftConfig::new(7)
            .unwrap()
            .with_behavior(5, Behavior::Silent)
            .with_behavior(6, Behavior::Silent);
        let result = run_with(config, 3);
        assert!(result.committed);
        assert_eq!(result.digest, digest());
    }

    #[test]
    fn silent_leader_triggers_view_change_and_recovery() {
        let config = PbftConfig::new(4)
            .unwrap()
            .with_behavior(0, Behavior::Silent);
        let result = run_with(config, 4);
        assert!(result.committed, "view change should recover the run");
        assert!(result.final_view >= 1);
        // Latency includes at least one full view timeout.
        assert!(result.latency >= SimTime::from_secs(60.0));
    }

    #[test]
    fn equivocating_leader_is_deposed_and_safety_holds() {
        let config = PbftConfig::new(4)
            .unwrap()
            .with_behavior(0, Behavior::Equivocate);
        let result = run_with(config, 5);
        // Equivocation cannot split the committee; after the timeout a new
        // honest leader commits the true digest.
        assert!(result.committed);
        assert_eq!(result.digest, digest());
        assert!(result.final_view >= 1);
    }

    #[test]
    fn too_many_faults_miss_the_deadline() {
        let mut config = PbftConfig::new(4)
            .unwrap()
            .with_behavior(1, Behavior::Silent)
            .with_behavior(2, Behavior::Silent);
        config.deadline = SimTime::from_secs(300.0);
        let result = run_with(config, 6);
        assert!(!result.committed);
        assert_eq!(result.latency, SimTime::from_secs(300.0));
        assert_eq!(result.digest, Hash32::ZERO);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_with(PbftConfig::new(7).unwrap(), 9);
        let b = run_with(PbftConfig::new(7).unwrap(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_grows_with_committee_size() {
        // More replicas → more messages → later quorum completion (on
        // average; use fixed seeds and a margin).
        let small = run_with(PbftConfig::new(4).unwrap(), 10);
        let large = run_with(PbftConfig::new(31).unwrap(), 10);
        assert!(large.messages_delivered > small.messages_delivered * 10);
    }

    #[test]
    fn network_too_small_is_an_error() {
        let mut master = rng::master(0);
        let network = Network::new(NetworkConfig::lan(3), rng::fork(&mut master, "net")).unwrap();
        let err = PbftRunner::new(
            PbftConfig::new(4).unwrap(),
            network,
            rng::fork(&mut master, "pbft"),
        )
        .run(digest());
        assert!(err.is_err());
    }

    #[test]
    fn telemetry_covers_phases_view_changes_and_completion() {
        let (obs, buf) = Obs::memory(mvcom_obs::ObsLevel::Trace);
        let config = PbftConfig::new(4)
            .unwrap()
            .with_behavior(0, Behavior::Silent);
        let mut master = rng::master(4);
        let network =
            Network::new(NetworkConfig::lan(config.n), rng::fork(&mut master, "net")).unwrap();
        let result = PbftRunner::new(config, network, rng::fork(&mut master, "pbft"))
            .with_obs(obs.clone(), "pbft-test")
            .run(digest())
            .unwrap();
        assert!(result.committed);
        let text = buf.contents();
        for needle in [
            "\"kind\":\"pbft_phase\"",
            "\"phase\":\"pre-prepare\"",
            "\"phase\":\"prepared\"",
            "\"phase\":\"committed\"",
            "\"kind\":\"pbft_view_change\"",
            "\"kind\":\"pbft_done\"",
            "\"label\":\"pbft-test\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert_eq!(obs.invalid_dropped(), 0);
    }

    #[test]
    fn config_validation() {
        assert!(PbftConfig::new(3).is_err());
        let mut c = PbftConfig::new(4).unwrap();
        c.behaviors.pop();
        assert!(c.validate().is_err());
        let mut c = PbftConfig::new(4).unwrap();
        c.view_timeout = SimTime::ZERO;
        assert!(c.validate().is_err());
    }
}
