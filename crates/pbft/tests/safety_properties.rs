//! Property-based PBFT safety and liveness under randomized fault
//! injection.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom_pbft::runner::{PbftConfig, PbftRunner};
use mvcom_pbft::Behavior;
use mvcom_simnet::{rng, Network, NetworkConfig};
use mvcom_types::{Hash32, SimTime};
use proptest::prelude::*;

fn run(n: u32, faults: &[(u32, Behavior)], seed: u64) -> mvcom_pbft::ConsensusResult {
    let mut config = PbftConfig::new(n).unwrap();
    for &(idx, b) in faults {
        config = config.with_behavior(idx, b);
    }
    config.deadline = SimTime::from_secs(2_000.0);
    let mut master = rng::master(seed);
    let network = Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
    PbftRunner::new(config, network, rng::fork(&mut master, "pbft"))
        .run(Hash32::digest(b"property"))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Liveness: any committee with at most `f` faulty replicas commits
    /// the proposed digest (possibly after view changes).
    #[test]
    fn commits_with_at_most_f_random_faults(
        seed in 0u64..10_000,
        n_pick in 0usize..3,
        fault_seed in 0u64..1_000,
    ) {
        let n = [4u32, 7, 10][n_pick];
        let f = (n - 1) / 3;
        // Choose up to f distinct random victims with random behaviours.
        let mut victims: Vec<u32> = (0..n).collect();
        let mut r = rng::master(fault_seed);
        use rand::seq::SliceRandom;
        victims.shuffle(&mut r);
        use rand::Rng;
        let k = r.gen_range(0..=f);
        let faults: Vec<(u32, Behavior)> = victims[..k as usize]
            .iter()
            .map(|&v| {
                let b = if r.gen::<bool>() { Behavior::Silent } else { Behavior::Equivocate };
                (v, b)
            })
            .collect();
        let result = run(n, &faults, seed);
        prop_assert!(
            result.committed,
            "n={n}, faults={faults:?} should commit (view {})",
            result.final_view
        );
        prop_assert_eq!(result.digest, Hash32::digest(b"property"));
    }

    /// Safety: whatever the fault pattern (even beyond `f`), a committed
    /// digest is always the proposer's honest digest — equivocation can
    /// stall the protocol but never commit a forged value.
    #[test]
    fn committed_digest_is_never_forged(
        seed in 0u64..10_000,
        fault_mask in 0u32..16,
    ) {
        let n = 4u32;
        let faults: Vec<(u32, Behavior)> = (0..n)
            .filter(|i| fault_mask >> i & 1 == 1)
            .map(|i| (i, Behavior::Equivocate))
            .collect();
        if faults.len() == n as usize {
            return Ok(()); // nothing honest left to assert about
        }
        let result = run(n, &faults, seed);
        if result.committed {
            prop_assert_eq!(result.digest, Hash32::digest(b"property"));
        }
    }
}

#[test]
fn repeated_view_changes_eventually_commit() {
    // Leaders of views 0 and 1 are both silent: two successive view
    // changes are needed before an honest leader proposes.
    let n = 7u32;
    let result = run(n, &[(0, Behavior::Silent), (1, Behavior::Silent)], 424_242);
    assert!(result.committed);
    assert!(result.final_view >= 2, "needed at least two view changes");
}
