//! Differential test: the bitmask [`Replica`] must agree with the frozen
//! hash-map [`ReferenceReplica`] message-for-message.
//!
//! Both machines are driven through identical randomized schedules —
//! proposals, deliveries (including duplicated, reordered, and stale-view
//! messages), timeouts, and forged votes — and after *every* step the
//! emitted outbound messages and the observable state (view, committed
//! digest) must be equal across all replicas. Schedules cover silent and
//! equivocating leaders (so view changes actually fire) and a committee of
//! `n = 130 > 128` to exercise the `VoterMask::Large` word-vector
//! fallback.
//!
//! Forged senders stay inside `0..n`: out-of-range indices are the one
//! *intentional* divergence (the fast path drops them, the reference
//! counted them as voters — see `replica.rs` docs).

#![allow(clippy::unwrap_used)]

use mvcom_pbft::reference::ReferenceReplica;
use mvcom_pbft::replica::{Behavior, Outbound, Replica, Target};
use mvcom_pbft::{Message, MessageKind};
use mvcom_types::Hash32;

/// Tiny deterministic generator (splitmix-style) so the test needs no RNG
/// dependency and every failure is reproducible from the seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The two machines under lockstep comparison.
struct Pair {
    fast: Vec<Replica>,
    reference: Vec<ReferenceReplica>,
}

impl Pair {
    fn new(n: u32, behaviors: &[(u32, Behavior)]) -> Pair {
        let behavior_of = |i: u32| {
            behaviors
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, b)| *b)
                .unwrap_or(Behavior::Honest)
        };
        Pair {
            fast: (0..n).map(|i| Replica::new(i, n, behavior_of(i))).collect(),
            reference: (0..n)
                .map(|i| ReferenceReplica::new(i, n, behavior_of(i)))
                .collect(),
        }
    }

    /// Applies one action to both machines and asserts identical output.
    fn step(&mut self, who: usize, action: &Action, ctx: &str) -> Vec<Outbound> {
        let (out_fast, out_ref) = match *action {
            Action::Propose(digest) => (
                self.fast[who].propose(digest),
                self.reference[who].propose(digest),
            ),
            Action::Timeout => (
                self.fast[who].on_timeout(),
                self.reference[who].on_timeout(),
            ),
            Action::Deliver(msg) => (
                self.fast[who].on_message(msg),
                self.reference[who].on_message(msg),
            ),
        };
        assert_eq!(out_fast, out_ref, "outputs diverged at {ctx}");
        out_fast
    }

    fn assert_state_equal(&self, ctx: &str) {
        for (fast, reference) in self.fast.iter().zip(&self.reference) {
            assert_eq!(fast.view(), reference.view(), "view diverged at {ctx}");
            assert_eq!(
                fast.committed(),
                reference.committed(),
                "committed diverged at {ctx}"
            );
        }
    }
}

#[derive(Clone, Copy)]
enum Action {
    Propose(Hash32),
    Timeout,
    Deliver(Message),
}

/// Queues machine output as per-recipient deliveries: a broadcast becomes
/// one pending message per replica, so random schedules can actually
/// assemble quorums (while still dropping/duplicating/reordering freely).
fn enqueue(pool: &mut Vec<Outbound>, out: Vec<Outbound>, n: u32) {
    for ob in out {
        match ob.target {
            Target::One(_) => pool.push(ob),
            Target::All => pool.extend((0..n).map(|to| Outbound {
                target: Target::One(to),
                message: ob.message,
            })),
        }
    }
}

fn digests() -> [Hash32; 3] {
    [
        Hash32::digest(b"block-a"),
        Hash32::digest(b"block-b"),
        Hash32::digest(b"block-c"),
    ]
}

/// Runs one randomized schedule and returns how many replicas committed
/// (so callers can assert the schedule was not vacuous).
fn run_schedule(n: u32, behaviors: &[(u32, Behavior)], steps: usize, seed: u64) -> usize {
    let mut rng = Lcg(seed);
    let mut pair = Pair::new(n, behaviors);
    let digests = digests();
    // Pending (target, message) pairs produced by the machines themselves.
    let mut pool: Vec<Outbound> = Vec::new();

    // Kick off with the view-0 leader proposing.
    let initial = pair.step(0, &Action::Propose(digests[0]), "initial propose");
    enqueue(&mut pool, initial, n);

    for step in 0..steps {
        let ctx = format!("n={n} seed={seed} step={step}");
        let roll = rng.below(100);
        let action = if roll < 60 && !pool.is_empty() {
            // Deliver a pending protocol message (random order, and *not*
            // removed ~1/4 of the time, so duplicates arrive too).
            let pick = rng.below(pool.len() as u64) as usize;
            let ob = if rng.below(4) == 0 {
                pool[pick]
            } else {
                pool.swap_remove(pick)
            };
            let to = match ob.target {
                Target::One(to) => to,
                Target::All => rng.below(u64::from(n)) as u32,
            };
            let out = pair.step(to as usize, &Action::Deliver(ob.message), &ctx);
            enqueue(&mut pool, out, n);
            pair.assert_state_equal(&ctx);
            continue;
        } else if roll < 75 {
            Action::Timeout
        } else if roll < 85 {
            Action::Propose(digests[rng.below(3) as usize])
        } else {
            // Forged / stray message: random kind, nearby view, in-range
            // sender (out-of-range is the documented hardening divergence).
            let kind = match rng.below(5) {
                0 => MessageKind::PrePrepare,
                1 => MessageKind::Prepare,
                2 => MessageKind::Commit,
                3 => MessageKind::ViewChange,
                _ => MessageKind::NewView,
            };
            Action::Deliver(Message {
                kind,
                view: rng.below(4),
                digest: digests[rng.below(3) as usize],
                from: rng.below(u64::from(n)) as u32,
            })
        };
        let who = rng.below(u64::from(n)) as usize;
        let out = pair.step(who, &action, &ctx);
        enqueue(&mut pool, out, n);
        pair.assert_state_equal(&ctx);
        // Cap the pool so broadcast-heavy schedules stay bounded.
        if pool.len() > 4_096 {
            pool.truncate(4_096);
        }
    }
    pair.fast.iter().filter(|r| r.committed().is_some()).count()
}

#[test]
fn honest_schedules_agree_and_commit() {
    let mut committed_somewhere = false;
    for seed in 0..20 {
        let committed = run_schedule(4, &[], 600, seed);
        committed_somewhere |= committed > 0;
    }
    assert!(
        committed_somewhere,
        "no schedule reached a commit — the test is vacuous"
    );
}

#[test]
fn larger_committee_schedules_agree() {
    for seed in 0..10 {
        run_schedule(13, &[], 800, 1_000 + seed);
    }
}

#[test]
fn silent_leader_schedules_reach_view_changes() {
    // Leader 0 silent: timeouts accumulate ViewChange quorums, so these
    // schedules exercise view entry (tally clearing + watermark guards).
    for seed in 0..20 {
        run_schedule(4, &[(0, Behavior::Silent)], 600, 2_000 + seed);
    }
}

#[test]
fn equivocating_leader_schedules_agree() {
    for seed in 0..20 {
        run_schedule(
            7,
            &[(0, Behavior::Equivocate), (5, Behavior::Silent)],
            700,
            3_000 + seed,
        );
    }
}

#[test]
fn word_fallback_above_128_replicas_agrees() {
    // n = 130 > 128 forces VoterMask::Large on the fast path.
    for seed in 0..3 {
        run_schedule(130, &[(1, Behavior::Silent)], 400, 4_000 + seed);
    }
}
