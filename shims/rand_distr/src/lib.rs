//! Offline shim for the subset of `rand_distr` 0.4 used by this
//! workspace: [`Distribution`], [`Uniform`], [`Exp`], and [`LogNormal`].
//!
//! The samplers are mathematically faithful (inverse-CDF for the
//! exponential, Box–Muller for the normal underlying the log-normal), so
//! statistical cross-validation tests that compare empirical moments
//! against closed forms hold. Only the exact stream of values differs
//! from upstream `rand_distr`.

use rand::{Rng, RngCore};

/// Types that can produce samples of `T` from a generator.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error type returned by distribution constructors on invalid
/// parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl core::fmt::Display for DistrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistrError {}

/// Upstream-compatible alias: `rand_distr::ExpError` etc. all display a
/// message; workspace code only ever `.unwrap()`s or propagates them.
pub type Error = DistrError;

/// Draws uniform in the open interval `(0, 1)`, safe for `ln()`.
#[inline]
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rand::StandardSample::sample_standard(rng);
        if u > 0.0 {
            return u;
        }
    }
}

/// Uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Uniform over the half-open interval `[low, high)`.
    pub fn new(low: f64, high: f64) -> Uniform {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform { low, high }
    }

    /// Uniform over the closed interval `[low, high]`.
    pub fn new_inclusive(low: f64, high: f64) -> Uniform {
        assert!(low <= high, "Uniform::new_inclusive called with low > high");
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rand::StandardSample::sample_standard(rng);
        let v = self.low + (self.high - self.low) * u;
        if v >= self.high {
            self.low
        } else {
            v
        }
    }
}

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Exp, DistrError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Exp { lambda })
        } else {
            Err(DistrError("Exp::new: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    /// Inverse-CDF sampling: `-ln(U) / lambda` with `U` in `(0, 1)`.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

/// Standard normal via Box–Muller (one value per draw; the sibling is
/// discarded to keep the sampler stateless and `Copy`).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open01(rng);
    let u2 = open01(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, DistrError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(DistrError("Normal::new: invalid mean or std_dev"))
        }
    }
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Note that like upstream `rand_distr`, `mu` and `sigma` are the
/// parameters of the *underlying normal*, not the log-normal's own mean
/// and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, DistrError> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(DistrError("LogNormal::new: invalid mu or sigma"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// SplitMix64-based generator good enough for moment checks.
    struct Sm(u64);

    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl SeedableRng for Sm {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            Sm(u64::from_le_bytes(seed))
        }
    }

    fn mean_of(samples: impl Iterator<Item = f64>) -> (f64, usize) {
        let mut total = 0.0;
        let mut n = 0usize;
        for s in samples {
            total += s;
            n += 1;
        }
        (total / n as f64, n)
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exp::new(1.0 / 600.0).unwrap();
        let mut rng = Sm::seed_from_u64(11);
        let (mean, _) = mean_of((0..200_000).map(|_| d.sample(&mut rng)));
        assert!((mean - 600.0).abs() < 6.0, "mean {mean}");
    }

    #[test]
    fn log_normal_mean_matches() {
        // Mean of exp(N(mu, sigma)) is exp(mu + sigma^2 / 2).
        let (mu, sigma) = (3.0, 0.5);
        let d = LogNormal::new(mu, sigma).unwrap();
        let mut rng = Sm::seed_from_u64(23);
        let (mean, _) = mean_of((0..200_000).map(|_| d.sample(&mut rng)));
        let expect = (mu + sigma * sigma / 2.0f64).exp();
        assert!(
            (mean / expect - 1.0).abs() < 0.02,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = Uniform::new(0.5, 2.0);
        let mut rng = Sm::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((0.5..2.0).contains(&v));
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
