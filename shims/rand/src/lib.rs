//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access to a crates registry, so
//! external dependencies are replaced by in-tree path crates with the same
//! names. This crate reimplements exactly the surface the workspace calls:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`, `fill`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! Determinism contract: all workspace code seeds generators explicitly
//! (there is no `thread_rng`), so streams are reproducible across runs and
//! platforms. Streams are *not* guaranteed to match upstream `rand` —
//! workspace tests assert self-consistency and distributional properties,
//! not upstream-identical values.

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material type (a byte array for all workspace generators).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// so that nearby integer seeds yield unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the shim's equivalent of sampling from `rand`'s `Standard`
/// distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open and inclusive ranges.
pub trait SampleUniform: Sized {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Draws a uniform value in `[0, span]` (inclusive) using a widening
/// multiply; the bias for spans far below 2^64 is negligible for
/// simulation purposes and the result is fully deterministic.
#[inline]
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span as u128 + 1;
    ((rng.next_u64() as u128 * bound) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128 - 1) as u64;
                let offset = uniform_u64_inclusive(rng, span);
                (low as i128 + offset as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                let offset = uniform_u64_inclusive(rng, span);
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = low + (high - low) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= high { low } else { v }
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`).
    use super::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Minimal `rngs` module for API compatibility.
}

pub mod distributions {
    //! Re-exports mirroring `rand::distributions` for code that imports
    //! the `Distribution` trait from `rand` rather than `rand_distr`.
    pub use super::StandardSample;
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for exercising the trait surface.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift(7);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
