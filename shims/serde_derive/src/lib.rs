//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable in this offline build).
//!
//! The macros only need the *shape* of an item — its name, its field
//! names, and its variants — because the companion `serde` shim resolves
//! field types through inference (`Deserialize::from_value(...)` in a
//! struct literal). Type tokens are therefore skipped, not parsed.
//!
//! Supported shapes (everything the workspace derives): unit structs,
//! tuple structs, named-field structs, and enums whose variants are
//! unit, tuple, or named-field. Generic items are rejected with a
//! compile error. Of the `#[serde(...)]` attributes, field-level
//! `default` / `default = "path"` are honoured (a missing key falls back
//! to `Default::default()` or `path()`, matching upstream); the rest are
//! accepted and ignored — the only other one the workspace uses is
//! `#[serde(transparent)]` on newtype structs, and newtype structs
//! already serialize transparently (as their inner value, matching
//! upstream serde's newtype behaviour).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct { arity: usize },
    NamedStruct { fields: Vec<Field> },
    Enum { variants: Vec<Variant> },
}

struct Field {
    name: String,
    /// `#[serde(default)]` → `Some(None)`; `#[serde(default = "path")]`
    /// → `Some(Some(path))`; no default attribute → `None`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let body = match which {
        Which::Serialize => gen_serialize(&item),
        Which::Deserialize => gen_deserialize(&item),
    };
    body.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`, including expanded doc comments) and
/// a visibility qualifier (`pub`, `pub(crate)`, ...). Returns the field
/// default captured from a `#[serde(default)]` attribute, if any.
fn skip_attrs_and_vis(tokens: &mut Tokens) -> Option<Option<String>> {
    let mut default = None;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The attribute body `[...]`.
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    if let Some(d) = serde_default_attr(&g) {
                        default = Some(d);
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return default,
        }
    }
}

/// Recognizes `serde(default)` / `serde(default = "path")` inside an
/// attribute body, returning `None` for any other attribute.
fn serde_default_attr(attr: &Group) -> Option<Option<String>> {
    let mut tokens = attr.stream().into_iter().peekable();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tok) = inner.next() {
        let TokenTree::Ident(id) = &tok else { continue };
        if id.to_string() != "default" {
            continue;
        }
        match inner.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                inner.next();
                if let Some(TokenTree::Literal(lit)) = inner.next() {
                    let path = lit.to_string();
                    return Some(Some(path.trim_matches('"').to_string()));
                }
                return None;
            }
            _ => return Some(None),
        }
    }
    None
}

fn next_ident(tokens: &mut Tokens, what: &str) -> Result<String, String> {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!(
            "serde shim derive: expected {what}, found {other:?}"
        )),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let _ = skip_attrs_and_vis(&mut tokens);
    let keyword = next_ident(&mut tokens, "`struct` or `enum`")?;
    let name = next_ident(&mut tokens, "item name")?;
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err("serde shim derive: generic types are not supported".into());
        }
    }
    let kind = match (keyword.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct {
                fields: parse_named_fields(&g)?,
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::TupleStruct {
                arity: tuple_arity(&g),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Kind::Enum {
            variants: parse_variants(&g)?,
        },
        (kw, other) => {
            return Err(format!(
                "serde shim derive: unsupported item shape ({kw}, next token {other:?})"
            ));
        }
    };
    Ok(Item { name, kind })
}

/// Extracts field names (and any `#[serde(default)]` markers) from a
/// `{ ... }` group, skipping each field's type tokens (balanced over
/// `<`/`>`) up to the next top-level comma.
fn parse_named_fields(group: &Group) -> Result<Vec<Field>, String> {
    let mut tokens = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde shim derive: expected field, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        skip_type(&mut tokens);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Consumes type tokens until (and including) a comma at angle-bracket
/// depth zero, or the end of the stream.
fn skip_type(tokens: &mut Tokens) {
    let mut depth = 0i32;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant: the number of
/// non-empty top-level comma-separated segments.
fn tuple_arity(group: &Group) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut segment_has_tokens = false;
    for tok in group.stream() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if segment_has_tokens {
                        segments += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        segments += 1;
    }
    segments
}

fn parse_variants(group: &Group) -> Result<Vec<Variant>, String> {
    let mut tokens = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim derive: expected variant, got {other:?}"
                ))
            }
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                tokens.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                tokens.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant and/or the separating comma.
        let mut depth = 0i32;
        while let Some(tok) = tokens.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        tokens.next();
                        break;
                    }
                    _ => {}
                }
            }
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

const S: &str = "::serde::Serialize::to_value";
const D: &str = "::serde::Deserialize::from_value";

fn string_lit(text: &str) -> String {
    format!("::std::string::String::from(\"{text}\")")
}

/// `vec![a, b, c]` without relying on prelude macros in generated code.
fn vec_expr(items: &[String]) -> String {
    if items.is_empty() {
        "::std::vec::Vec::new()".to_string()
    } else {
        format!("::std::vec::Vec::from([{}])", items.join(", "))
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct { arity: 1 } => format!("{S}(&self.0)"),
        Kind::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity).map(|i| format!("{S}(&self.{i})")).collect();
            format!("::serde::Value::Array({})", vec_expr(&items))
        }
        Kind::NamedStruct { fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    let name = &f.name;
                    format!("({}, {S}(&self.{name}))", string_lit(name))
                })
                .collect();
            format!("::serde::Value::Object({})", vec_expr(&pairs))
        }
        Kind::Enum { variants } => {
            let mut arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                let tag = string_lit(vname);
                let arm = match &v.shape {
                    Shape::Unit => {
                        format!("{name}::{vname} => ::serde::Value::Str({tag}),")
                    }
                    Shape::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object({}),",
                        vec_expr(&[format!("({tag}, {S}(__f0))")])
                    ),
                    Shape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> =
                            binders.iter().map(|b| format!("{S}({b})")).collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object({}),",
                            binders.join(", "),
                            vec_expr(&[format!(
                                "({tag}, ::serde::Value::Array({}))",
                                vec_expr(&items)
                            )])
                        )
                    }
                    Shape::Named(fields) => {
                        let names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = names
                            .iter()
                            .map(|f| format!("({}, {S}({f}))", string_lit(f)))
                            .collect();
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object({}),",
                            names.join(", "),
                            vec_expr(&[format!(
                                "({tag}, ::serde::Value::Object({}))",
                                vec_expr(&pairs)
                            )])
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => {
            format!("let _ = __v; ::std::result::Result::Ok({name})")
        }
        Kind::TupleStruct { arity: 1 } => {
            format!("::std::result::Result::Ok({name}({D}(__v)?))")
        }
        Kind::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("{D}(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::expect_array(__v, \"{name}\", {arity})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::NamedStruct { fields } => {
            let inits: Vec<String> = fields.iter().map(field_init).collect();
            format!(
                "let __fields = ::serde::expect_object(__v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join("\n")
            )
        }
        Kind::Enum { variants } => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// One `field: <expr>,` initializer for a named field. Fields without a
/// default go through `get_field` (missing → `Null`, so `Option` fields
/// still read as `None`); `#[serde(default)]` fields distinguish a
/// missing key and fall back to `Default::default()` or the named path.
fn field_init(f: &Field) -> String {
    let name = &f.name;
    match &f.default {
        None => format!("{name}: {D}(::serde::get_field(__fields, \"{name}\"))?,"),
        Some(default) => {
            let fallback = match default {
                None => "::std::default::Default::default()".to_string(),
                Some(path) => format!("{path}()"),
            };
            format!(
                "{name}: match ::serde::find_field(__fields, \"{name}\") {{\n\
                 ::std::option::Option::Some(__dv) => {D}(__dv)?,\n\
                 ::std::option::Option::None => {fallback},\n\
                 }},"
            )
        }
    }
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let mut data_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.shape {
            Shape::Unit => continue,
            Shape::Tuple(1) => {
                format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({D}(__inner)?)),")
            }
            Shape::Tuple(arity) => {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("{D}(&__items[{i}])?"))
                    .collect();
                format!(
                    "\"{vname}\" => {{\n\
                     let __items = ::serde::expect_array(__inner, \"{name}::{vname}\", {arity})?;\n\
                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                     }}",
                    items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields.iter().map(field_init).collect();
                format!(
                    "\"{vname}\" => {{\n\
                     let __fields = ::serde::expect_object(__inner, \"{name}::{vname}\")?;\n\
                     ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                     }}",
                    inits.join("\n")
                )
            }
        };
        data_arms.push(arm);
    }
    let mut match_arms = Vec::new();
    if !unit_arms.is_empty() {
        match_arms.push(format!(
            "::serde::Value::Str(__s) => match __s.as_str() {{\n\
             {}\n\
             __other => ::std::result::Result::Err(::serde::unknown_variant(\"{name}\", __other)),\n\
             }},",
            unit_arms.join("\n")
        ));
    }
    if !data_arms.is_empty() {
        match_arms.push(format!(
            "::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
             let (__tag, __inner) = &__pairs[0];\n\
             match __tag.as_str() {{\n\
             {}\n\
             __other => ::std::result::Result::Err(::serde::unknown_variant(\"{name}\", __other)),\n\
             }}\n\
             }},",
            data_arms.join("\n")
        ));
    }
    match_arms.push(format!(
        "__other => ::std::result::Result::Err(::serde::Error::expected(\"{name}\", __other)),"
    ));
    format!("match __v {{ {} }}", match_arms.join("\n"))
}
