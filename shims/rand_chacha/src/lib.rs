//! Offline shim for `rand_chacha`, implementing a genuine ChaCha8 stream
//! cipher core behind the `ChaCha8Rng` name.
//!
//! The workspace relies on ChaCha8 for *portable determinism*: the same
//! seed must yield the same stream on every platform and in every build.
//! This implementation follows RFC 8439's state layout (16 little-endian
//! words: 4 constants, 8 key words, 2 counter words, 2 nonce words) with
//! 8 rounds. Output word order is the canonical keystream order. Streams
//! are not guaranteed to be bit-identical to the upstream `rand_chacha`
//! crate, which is fine: the workspace asserts self-consistency, not
//! upstream equivalence.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic, seedable ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: a single stream per seed.
        let initial = state;
        // ChaCha8 = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, bytes) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut bytes = [0u8; 16];
        a.fill_bytes(&mut bytes);
        for chunk in bytes.chunks_exact(4) {
            assert_eq!(
                u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]),
                b.next_u32()
            );
        }
    }
}
