//! Offline shim for the subset of `serde_json` used by this workspace:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], built on the
//! `serde` shim's [`Value`] tree.
//!
//! Formatting notes:
//! - Floats print via Rust's shortest-round-trip `{:?}` formatting, so
//!   every finite `f64` survives a serialize/parse round trip exactly
//!   (integral floats render with a trailing `.0`, which the parser maps
//!   back to `F64`).
//! - Non-finite floats have no JSON representation; they render as the
//!   out-of-range literals `1e999` / `-1e999`, which `str::parse::<f64>`
//!   reads back as `±inf`. `NaN` renders as `null`. This keeps infinite
//!   simulated latencies (a real sentinel in this codebase) round-trippable.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON parsing or by lifting a parsed tree into a
/// typed structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Error {
        Error(err.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses a JSON document into a raw [`Value`] tree.
pub fn from_str_value(input: &str) -> Result<Value, Error> {
    parse_value_complete(input)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(key, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // `{:?}` is shortest-round-trip and always includes `.0` or an
        // exponent, keeping the number recognizably float-typed.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over chars.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// Consumed-character count, for error positions.
    pos: usize,
}

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        chars: input.chars().peekable(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.chars.peek().is_some() {
        return Err(Error::new(format!(
            "trailing characters after JSON value at position {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), Error> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(Error::new(format!(
                "expected `{want}` at position {}, found `{c}`",
                self.pos
            ))),
            None => Err(Error::new(format!("expected `{want}`, found end of input"))),
        }
    }

    fn expect_keyword(&mut self, rest: &str) -> Result<(), Error> {
        for want in rest.chars() {
            match self.bump() {
                Some(c) if c == want => {}
                _ => {
                    return Err(Error::new(format!(
                        "invalid literal near position {}",
                        self.pos
                    )))
                }
            }
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.chars.peek() {
            Some('n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some('t') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some('f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some('"') => self.parse_string().map(Value::Str),
            Some('[') => self.parse_array(),
            Some('{') => self.parse_object(),
            Some(c) if *c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{c}` at position {}",
                self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Value::Array(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array at position {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.bump();
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Object(fields)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object at position {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('b') => s.push('\u{08}'),
                    Some('f') => s.push('\u{0c}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect a trailing \uXXXX.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => s.push(c),
                            None => return Err(Error::new("invalid unicode escape")),
                        }
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `{other:?}`")));
                    }
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| Error::new("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let mut text = String::new();
        let mut is_float = false;
        if self.chars.peek() == Some(&'-') {
            text.push('-');
            self.bump();
        }
        while let Some(&c) = self.chars.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    text.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&600.0f64).unwrap(), "600.0");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("600.0").unwrap(), 600.0);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn infinities_round_trip() {
        let json = to_string(&f64::INFINITY).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), f64::INFINITY);
        let json = to_string(&f64::NEG_INFINITY).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn strings_escape_and_parse() {
        let original = "line\n\"quoted\"\tünïcode \\ end".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn vectors_and_tuples_round_trip() {
        let xs: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.25)];
        let json = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<(u64, f64)>>(&json).unwrap(), xs);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<u32>("5 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
