//! Offline shim for the subset of `serde` used by this workspace.
//!
//! Instead of serde's visitor-based, format-agnostic architecture, this
//! shim routes everything through an owned [`Value`] tree: `Serialize`
//! lowers a type to a `Value`, `Deserialize` lifts it back, and
//! `serde_json` renders/parses `Value`s. That is sufficient here because
//! the workspace (a) only ever derives the traits — there are no manual
//! `impl Serialize` blocks — and (b) only uses the JSON format.
//!
//! Encoding conventions match serde + serde_json defaults for the shapes
//! the workspace uses:
//! - structs → JSON objects keyed by field name;
//! - newtype structs (single-field tuple structs, including
//!   `#[serde(transparent)]` wrappers) → the inner value;
//! - tuple structs of arity ≥ 2 → arrays;
//! - enums → externally tagged: unit variants as `"Name"`, data variants
//!   as `{"Name": ...}`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned, format-independent data tree (the shim's serialization
/// intermediate representation).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs, so serialized field order is
    /// stable and matches declaration order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short type name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error raised while lifting a [`Value`] back into a typed structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lifts a [`Value`] tree back into `Self`.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code. Public but hidden from docs.
// ---------------------------------------------------------------------------

/// Looks up a struct field; missing fields resolve to `Null` so that
/// `Option` fields deserialize to `None`.
#[doc(hidden)]
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Field lookup that distinguishes a missing field (`None`) from an
/// explicit `null`; the derive routes `#[serde(default)]` fields here so
/// absent keys fall back to the default instead of failing on `Null`.
#[doc(hidden)]
pub fn find_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

#[doc(hidden)]
pub fn expect_object<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match value {
        Value::Object(fields) => Ok(fields),
        other => Err(Error::expected(ty, other)),
    }
}

#[doc(hidden)]
pub fn expect_array<'a>(value: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], Error> {
    match value {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected {ty} with {len} elements, found {}",
            items.len()
        ))),
        other => Err(Error::expected(ty, other)),
    }
}

#[doc(hidden)]
pub fn unknown_variant(ty: &str, tag: &str) -> Error {
    Error::custom(format!("unknown variant `{tag}` for enum {ty}"))
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let raw = match value {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let raw = match value {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| Error::custom("integer out of i64 range"))?,
                    Value::F64(x) if x.fract() == 0.0 => *x as i64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<char, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic container impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], Error> {
        let items = expect_array(value, "fixed-size array", N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = expect_array(value, "tuple", LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Maps serialize as objects; non-string keys are rendered through
    /// their serialized form (numbers become their decimal strings),
    /// mirroring `serde_json`'s behaviour for integer-keyed maps.
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        // Sort for deterministic output regardless of hasher state.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(7u32).to_value(), Value::U64(7));
    }

    #[test]
    fn arrays_round_trip() {
        let bytes = [1u8, 2, 3];
        let v = bytes.to_value();
        assert_eq!(<[u8; 3]>::from_value(&v).unwrap(), bytes);
        assert!(<[u8; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn missing_field_reads_as_null() {
        let fields = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(get_field(&fields, "a"), &Value::U64(1));
        assert_eq!(get_field(&fields, "b"), &Value::Null);
    }

    #[test]
    fn signed_integers_prefer_u64_when_non_negative() {
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(i64::from_value(&Value::I64(-5)).unwrap(), -5);
    }
}
