//! Offline shim for the subset of `parking_lot` this workspace uses: a
//! [`Mutex`] (and, for completeness, an [`RwLock`]) with parking_lot's
//! non-poisoning API over the std primitives.
//!
//! Poisoning is deliberately swallowed: parking_lot locks do not poison,
//! and the workspace's solver threads rely on `lock()` never returning a
//! `Result`.

use std::fmt;

pub use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(inner) => inner,
            Err(_) => panic!("parking_lot shim: mutex storage unreachable"),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader–writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn poisoned_lock_still_opens() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: a panicking holder does not poison.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
