//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! A strategy here is simply a deterministic sampler: `pick(&mut TestRng)
//! -> Value`. There is no shrinking — on failure the panic message
//! reports the case number and the failing assertion, and the run is
//! reproducible because every test derives its RNG seed from the test
//! function's name. The macro surface (`proptest!`, `prop_assert*`,
//! `prop_oneof!`) and the combinator surface (`prop_map`,
//! `prop_flat_map`, ranges, tuples, `collection::vec`/`btree_set`,
//! `any`) match what the workspace's property tests use.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A deterministic value sampler.
    pub trait Strategy {
        type Value;

        /// Draws one value from this strategy.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each sampled value and samples
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Filters sampled values; resamples (up to a cap) until `pred`
        /// accepts one.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erases this strategy for heterogeneous composition
        /// (e.g. `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.pick(rng)))
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn pick(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.pick(rng)).pick(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn pick(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.inner.pick(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "proptest shim: filter `{}` rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// A type-erased, reference-counted strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn pick(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between several boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn pick(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].pick(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn pick(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.pick(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arb_pick(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arb_pick(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            T::arb_pick(rng)
        }
    }

    /// Full-range strategy for a primitive type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Inclusive size bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s with element strategy `elem` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for `BTreeSet`s; like upstream proptest, the target size
    /// is best-effort (duplicate draws shrink the set).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: a collision-heavy domain may yield fewer
            // than `n` elements, matching upstream's best-effort sizing.
            let mut attempts = 0usize;
            while set.len() < n && attempts < n * 4 + 16 {
                set.insert(self.elem.pick(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Generator threaded through every strategy draw.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        /// Like upstream proptest, the default case count honors the
        /// `PROPTEST_CASES` environment variable (falling back to 64), so
        /// CI can dial coverage up without code changes.
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Derives a per-test RNG from the test's name, so every property
    /// test is deterministic yet decorrelated from its siblings.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests. Each `fn name(arg in strategy)`
/// item becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    ::std::module_path!(), "::", ::std::stringify!($name)
                ));
                for __case in 0..__config.cases {
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::pick(
                                    &($strat),
                                    &mut __rng,
                                );
                            )*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            ::std::stringify!($name),
                            __case + 1,
                            __config.cases,
                            __err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property (operands are taken by reference).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Uniform choice among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -4i32..=4, z in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_bounds(xs in crate::collection::vec(0u8..=255, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
        }

        #[test]
        fn maps_and_unions_compose(
            v in prop_oneof![
                (0usize..10).prop_map(|x| x * 2),
                (100usize..110).prop_map(|x| x + 1),
            ],
        ) {
            prop_assert!(v % 2 == 0 || (101..111).contains(&v), "v = {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("stable-name");
        let mut b = crate::test_runner::rng_for("stable-name");
        for _ in 0..32 {
            assert_eq!(
                (0u64..1_000_000).pick(&mut a),
                (0u64..1_000_000).pick(&mut b)
            );
        }
    }
}
