//! Offline shim for the subset of `criterion` used by the bench targets:
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Rather than criterion's statistical sampling, this harness times a
//! small fixed number of iterations per benchmark and prints mean
//! wall-clock time — enough to compare orders of magnitude offline while
//! keeping `cargo bench` fast and dependency-free.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up call).
const DEFAULT_ITERATIONS: u32 = 3;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// Identifier combining a function name and a parameter, printed as
/// `name/param` like upstream criterion.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion for APIs that accept either a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_text());
        run_benchmark(&label, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.text);
        run_benchmark(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        total_nanos: 0,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total_nanos / bencher.iterations as u128;
        eprintln!("  {label}: {} ns/iter (n={})", mean, bencher.iterations);
    } else {
        eprintln!("  {label}: no iterations recorded");
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    total_nanos: u128,
    iterations: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up draw, untimed.
        black_box(routine());
        for _ in 0..DEFAULT_ITERATIONS {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iterations += 1;
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}
