//! Offline shim for the sliver of `crossbeam` this workspace uses:
//! [`scope`] with `scope.spawn(|_| ...)`.
//!
//! Implemented over `std::thread::scope` (stable since 1.63), with the
//! crossbeam calling convention preserved: the spawn closure receives a
//! (here unit) scope argument, and `scope` returns `Err` with the panic
//! payload if any spawned thread panicked instead of propagating the
//! panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to the closure given to [`scope`]; spawns threads that
/// must finish before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument exists for
    /// signature compatibility with crossbeam (`|_| ...`) and carries no
    /// data.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a [`Scope`] whose spawned threads are all joined before
/// this function returns. Returns `Err` with the first panic payload if
/// any scoped thread (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod thread {
    //! Mirror of `crossbeam::thread` for code that spells the path out.
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let counter = AtomicU32::new(0);
        let result = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .unwrap();
        assert_eq!(result, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
