//! Telemetry acceptance tests: same-seed runs must produce byte-identical
//! JSONL, and every line an instrumented run emits must conform to the
//! schema registry that OBSERVABILITY.md documents.

// Test code: unwrap is fine here (see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::baselines::{sa::SaConfig, solve_observed};
use mvcom::obs::schema::{self, FieldType};
use mvcom::prelude::*;
use serde::Value;

fn instance(seed: u64) -> Instance {
    let trace = Trace::generate(TraceConfig::tiny(300), seed);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), seed);
    let shards = gen.next_epoch_with_replacement(40, 1).unwrap();
    InstanceBuilder::new()
        .alpha(1.5)
        .capacity(32_000)
        .n_min(10)
        .shards(shards)
        .build()
        .unwrap()
}

fn lockstep_jsonl(instance_seed: u64, se_seed: u64) -> String {
    let (obs, buf) = Obs::memory(ObsLevel::Trace);
    ParallelRunner::new(SeConfig::fast_test(se_seed).with_gamma(4))
        .run_lockstep(&instance(instance_seed), &obs)
        .unwrap();
    obs.flush_metrics(0.0);
    obs.flush();
    assert_eq!(obs.invalid_dropped(), 0, "sink rejected events");
    buf.contents()
}

#[test]
fn lockstep_telemetry_is_byte_identical_for_the_same_seed() {
    let a = lockstep_jsonl(7, 3);
    let b = lockstep_jsonl(7, 3);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay the identical event stream");
    // A different SE seed must change the stream (the telemetry actually
    // reflects the exploration path rather than being canned output).
    let c = lockstep_jsonl(7, 4);
    assert_ne!(a, c);
}

#[test]
fn full_pipeline_telemetry_is_byte_identical_for_the_same_seed() {
    let run = || {
        let (obs, buf) = Obs::memory(ObsLevel::Trace);
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 23)
            .unwrap()
            .with_obs(obs.clone());
        sim.run_epoch().unwrap();
        obs.flush_metrics(0.0);
        obs.flush();
        buf.contents()
    };
    assert_eq!(run(), run());
}

/// Wire-level schema conformance, checked on parsed JSON rather than
/// in-process [`mvcom::obs::Event`]s — this is the contract an external
/// consumer of the file actually sees.
#[test]
fn every_emitted_line_conforms_to_the_documented_schema() {
    let (obs, buf) = Obs::memory(ObsLevel::Trace);

    // Exercise every emitting site: full protocol epoch (formation, PoW,
    // PBFT, final block), a lockstep SE run (RESET bus, chains), a
    // sequential engine run (se_point), and a baseline solver.
    let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 23)
        .unwrap()
        .with_obs(obs.clone());
    sim.run_epoch().unwrap();
    let inst = instance(7);
    ParallelRunner::new(SeConfig::fast_test(3).with_gamma(4))
        .run_lockstep(&inst, &obs)
        .unwrap();
    SeEngine::new(&inst, SeConfig::fast_test(3))
        .unwrap()
        .with_obs(obs.clone())
        .run();
    let sa = SaSolver::new(SaConfig::paper(5));
    solve_observed(&sa, &inst, &obs).unwrap();
    obs.flush_metrics(0.0);
    obs.flush();
    assert_eq!(obs.invalid_dropped(), 0);

    let text = buf.contents();
    let mut kinds_seen = std::collections::BTreeSet::new();
    let mut prev_seq = None;
    for line in text.lines() {
        let parsed = serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("unparseable line `{line}`: {e}"));
        let Value::Object(fields) = &parsed else {
            panic!("line is not a JSON object: {line}");
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);

        // Envelope.
        assert_eq!(
            get("v"),
            Some(&Value::U64(u64::from(schema::SCHEMA_VERSION))),
            "bad schema version on {line}"
        );
        let Some(Value::U64(seq)) = get("seq") else {
            panic!("missing/bad seq on {line}");
        };
        if let Some(p) = prev_seq {
            assert_eq!(*seq, p + 1, "seq must be gapless");
        }
        prev_seq = Some(*seq);
        assert!(
            matches!(
                get("t"),
                Some(Value::U64(_) | Value::I64(_) | Value::F64(_))
            ),
            "missing/bad t on {line}"
        );
        let Some(Value::Str(kind)) = get("kind") else {
            panic!("missing kind on {line}");
        };

        // Payload against the registry.
        let spec = schema::spec(kind)
            .unwrap_or_else(|| panic!("kind `{kind}` is not in the schema registry"));
        kinds_seen.insert(spec.kind);
        for f in spec.fields {
            match get(f.name) {
                Some(v) => assert!(
                    wire_matches(f.ty, v),
                    "field `{}` of `{kind}` has wire type {} (want {:?}): {line}",
                    f.name,
                    v.kind(),
                    f.ty
                ),
                None => assert!(!f.required, "`{kind}` is missing `{}`: {line}", f.name),
            }
        }
        if !spec.open {
            for (name, _) in fields {
                assert!(
                    matches!(name.as_str(), "v" | "seq" | "t" | "kind")
                        || spec.fields.iter().any(|f| f.name == name),
                    "closed kind `{kind}` carries undeclared field `{name}`"
                );
            }
        }
    }

    // The stream must actually cover the pipeline, not just parse.
    for required in [
        "epoch_start",
        "pow_done",
        "formation_done",
        "committee_consensus",
        "pbft_done",
        "final_block",
        "epoch_end",
        "se_init",
        "se_chain_point",
        "se_point",
        "se_improve",
        "se_converged",
        "reset_publish",
        "reset_apply",
        "solver_point",
        "solver_done",
        "metric",
    ] {
        assert!(
            kinds_seen.contains(required),
            "stream never emitted `{required}`"
        );
    }
}

/// Maps a [`FieldType`] onto what the JSON parser can legitimately hand
/// back. Integers may surface as either signedness, and `F64` fields with
/// integral values print without a fraction; non-finite floats encode as
/// `null` (documented in OBSERVABILITY.md).
fn wire_matches(ty: FieldType, v: &Value) -> bool {
    match ty {
        FieldType::U64 => matches!(v, Value::U64(_)),
        FieldType::I64 => matches!(v, Value::I64(_) | Value::U64(_)),
        FieldType::F64 => matches!(
            v,
            Value::F64(_) | Value::U64(_) | Value::I64(_) | Value::Null
        ),
        FieldType::Str => matches!(v, Value::Str(_)),
        FieldType::Bool => matches!(v, Value::Bool(_)),
    }
}
