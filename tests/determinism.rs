//! Whole-stack determinism: the same seed reproduces every layer
//! bit-for-bit — the property the figure harness depends on.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::prelude::*;

#[test]
fn dataset_is_reproducible() {
    let a = Trace::generate(TraceConfig::jan_2016(), 1);
    let b = Trace::generate(TraceConfig::jan_2016(), 1);
    assert_eq!(a.blocks(), b.blocks());
}

#[test]
fn epoch_generation_is_reproducible() {
    let trace = Trace::generate(TraceConfig::tiny(300), 2);
    let mut g1 = EpochGenerator::new(&trace, LatencyConfig::paper(), 3);
    let mut g2 = EpochGenerator::new(&trace, LatencyConfig::paper(), 3);
    for _ in 0..3 {
        assert_eq!(g1.next_epoch(20).unwrap(), g2.next_epoch(20).unwrap());
    }
}

#[test]
fn se_runs_are_reproducible_across_engines() {
    let trace = Trace::generate(TraceConfig::tiny(300), 4);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), 4);
    let shards = gen.next_epoch_with_replacement(40, 1).unwrap();
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(32_000)
        .n_min(10)
        .shards(shards)
        .build()
        .unwrap();
    let a = SeEngine::new(&instance, SeConfig::paper(9)).unwrap().run();
    let b = SeEngine::new(&instance, SeConfig::paper(9)).unwrap().run();
    assert_eq!(a.best_solution, b.best_solution);
    assert_eq!(a.best_utility, b.best_utility);
    assert_eq!(a.trajectory, b.trajectory);
    // A different seed must change the exploration path.
    let c = SeEngine::new(&instance, SeConfig::paper(10)).unwrap().run();
    assert_ne!(a.trajectory, c.trajectory);
}

#[test]
fn online_runs_are_reproducible() {
    let trace = Trace::generate(TraceConfig::tiny(300), 5);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), 5);
    let shards = gen.next_epoch_with_replacement(20, 1).unwrap();
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(16_000)
        .n_min(5)
        .shards(shards)
        .build()
        .unwrap();
    let victim = instance.shards()[2].committee();
    let events = vec![TimedEvent::leave(50, victim)];
    let config = SeConfig::fast_test(6);
    let a = run_online(&instance, config, &events, DynamicsPolicy::Trim).unwrap();
    let b = run_online(&instance, config, &events, DynamicsPolicy::Trim).unwrap();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.events, b.events);
}

#[test]
fn full_protocol_epochs_are_reproducible() {
    let mut a = ElasticoSim::new(ElasticoConfig::small_test(), 11).unwrap();
    let mut b = ElasticoSim::new(ElasticoConfig::small_test(), 11).unwrap();
    for _ in 0..2 {
        assert_eq!(a.run_epoch().unwrap(), b.run_epoch().unwrap());
    }
}

#[test]
fn baseline_solvers_are_reproducible() {
    use mvcom::baselines::{sa::SaConfig, woa::WoaConfig};
    let trace = Trace::generate(TraceConfig::tiny(300), 12);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), 12);
    let shards = gen.next_epoch_with_replacement(25, 1).unwrap();
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(20_000)
        .n_min(8)
        .shards(shards)
        .build()
        .unwrap();
    let sa_cfg = SaConfig {
        iterations: 400,
        ..SaConfig::paper(13)
    };
    assert_eq!(
        SaSolver::new(sa_cfg).solve(&instance).unwrap(),
        SaSolver::new(sa_cfg).solve(&instance).unwrap()
    );
    let woa_cfg = WoaConfig {
        iterations: 100,
        ..WoaConfig::paper(13)
    };
    assert_eq!(
        WoaSolver::new(woa_cfg).solve(&instance).unwrap(),
        WoaSolver::new(woa_cfg).solve(&instance).unwrap()
    );
    assert_eq!(
        DpSolver::default().solve(&instance).unwrap(),
        DpSolver::default().solve(&instance).unwrap()
    );
}
