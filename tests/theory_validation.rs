//! Validating the paper's analytical results against the implementation.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::core::theory;
use mvcom::prelude::*;

fn small_instance(alpha: f64) -> Instance {
    let shards: Vec<ShardInfo> = [
        (100u64, 950.0f64),
        (140, 800.0),
        (90, 990.0),
        (120, 700.0),
        (110, 1000.0),
        (95, 850.0),
        (130, 600.0),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(txs, lat))| {
        ShardInfo::new(
            CommitteeId(i as u32),
            txs,
            TwoPhaseLatency::from_total(SimTime::from_secs(lat)),
        )
    })
    .collect();
    InstanceBuilder::new()
        .alpha(alpha)
        .capacity(100_000)
        .n_min(1)
        .shards(shards)
        .build()
        .unwrap()
}

#[test]
fn stationary_distribution_matches_eq_6_empirically() {
    // Long CTMC run over a cardinality slice: time-averaged occupancy must
    // approach p* ∝ exp(βU) (eq. (6)).
    let instance = small_instance(1.0);
    let beta = 0.015;
    let states = theory::enumerate_states(&instance, 3).unwrap();
    let p_star = theory::stationary_distribution(&instance, beta, &states);
    let mut rng = mvcom::simnet::rng::master(123);
    let mut sim = theory::CtmcSimulator::new(&instance, beta, 0.0, states[0].clone());
    let occupancy = sim.occupancy(80_000, &mut rng);
    let total: f64 = occupancy.values().sum();
    let empirical: Vec<f64> = states
        .iter()
        .map(|s| {
            let key: Vec<usize> = s.iter_selected().collect();
            occupancy.get(&key).copied().unwrap_or(0.0) / total
        })
        .collect();
    let d = theory::tv_distance(&empirical, &p_star);
    assert!(d < 0.06, "TV distance to the eq.(6) stationary law: {d}");
}

#[test]
fn sharper_beta_concentrates_on_better_solutions() {
    // Remark 1/2 tradeoff: larger β shrinks the approximation loss, so the
    // stationary mass of the top state grows.
    let instance = small_instance(1.0);
    let states = theory::enumerate_states(&instance, 3).unwrap();
    let best = states
        .iter()
        .enumerate()
        .max_by(|a, b| instance.utility(a.1).total_cmp(&instance.utility(b.1)))
        .unwrap()
        .0;
    let p_soft = theory::stationary_distribution(&instance, 0.001, &states);
    let p_sharp = theory::stationary_distribution(&instance, 0.05, &states);
    assert!(p_sharp[best] > p_soft[best]);
    assert!(
        theory::approximation_loss(0.05, instance.len())
            < theory::approximation_loss(0.001, instance.len())
    );
}

#[test]
fn mixing_time_bounds_bracket_observed_convergence() {
    // Not a tight check (the bounds are loose by design); verify the
    // implementation orders them correctly and both respond to ε.
    let instance = small_instance(1.0);
    let states = theory::enumerate_states(&instance, 3).unwrap();
    let utilities: Vec<f64> = states.iter().map(|s| instance.utility(s)).collect();
    let u_max = utilities.iter().copied().fold(f64::MIN, f64::max);
    let u_min = utilities.iter().copied().fold(f64::MAX, f64::min);
    let beta = 0.01;
    let lower = theory::mixing_time_lower(0.05, instance.len(), u_max, u_min, beta, 0.0);
    let upper = theory::mixing_time_upper(0.05, instance.len(), u_max, u_min, beta, 0.0);
    assert!(lower > 0.0 && upper > lower);
    // ln-forms stay finite at paper scale where the plain forms overflow.
    assert!(theory::ln_mixing_time_upper(0.01, 1000, 1e6, -1e6, 2.0, 0.0).is_finite());
}

#[test]
fn failure_perturbation_obeys_theorem_2_exactly_on_enumerable_instances() {
    // Theorem 2: ‖q*uᵀ − q̃uᵀ‖ ≤ max_g U_g. Compute both sides exactly.
    let instance = small_instance(1.0);
    let beta = 0.01;
    let cardinality = 3;
    let states = theory::enumerate_states(&instance, cardinality).unwrap();
    let p_star = theory::stationary_distribution(&instance, beta, &states);
    for failed in 0..instance.len() {
        let survivors: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.contains(failed))
            .map(|(i, _)| i)
            .collect();
        if survivors.is_empty() {
            continue;
        }
        let trimmed: Vec<_> = survivors.iter().map(|&i| states[i].clone()).collect();
        let q_star = theory::stationary_distribution(&instance, beta, &trimmed);
        let utilities: Vec<f64> = trimmed.iter().map(|s| instance.utility(s)).collect();
        // q̃ = original distribution restricted to survivors (eq. (16)).
        let q_tilde: Vec<f64> = survivors.iter().map(|&i| p_star[i]).collect();
        let lhs: f64 = q_star
            .iter()
            .zip(&q_tilde)
            .zip(&utilities)
            .map(|((a, b), u)| (a - b) * u)
            .sum::<f64>()
            .abs();
        let bound = utilities.iter().copied().fold(f64::MIN, f64::max).abs();
        assert!(
            lhs <= bound + 1e-9,
            "failed={failed}: perturbation {lhs} exceeds Theorem 2 bound {bound}"
        );
    }
}

#[test]
fn trimmed_tv_distance_approaches_half_as_beta_vanishes() {
    let instance = small_instance(1.0);
    // Cardinality 3 of 7 shards: fraction of states containing any fixed
    // shard is C(6,2)/C(7,3) = 15/35 ≈ 0.43.
    let d = theory::trimmed_tv_distance(&instance, 1e-9, 3, 0).unwrap();
    assert!((d - 15.0 / 35.0).abs() < 1e-6, "d = {d}");
    assert!(d <= theory::failure_tv_bound());
}

#[test]
fn knapsack_reduction_equivalence_on_solved_instances() {
    // Solve a knapsack optimally by DP over the reduced MVCom instance and
    // compare against a hand-computed optimum — the §III-C reduction is
    // value-preserving.
    let values = [60.0, 100.0, 120.0, 75.0];
    let weights = [10u64, 20, 30, 15];
    let capacity = 50;
    let instance =
        mvcom::core::problem::knapsack_reduction(&values, &weights, capacity, 1.0).unwrap();
    let exact = ExhaustiveSolver::new().solve(&instance).unwrap();
    // Optimum of this knapsack: items {1, 2} → 220 (vs {0,1,3}=235 w=45).
    // Check exhaustively in plain arithmetic:
    let mut best = 0.0f64;
    for mask in 0u32..16 {
        let w: u64 = (0..4)
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| weights[i])
            .sum();
        if w <= capacity {
            let v: f64 = (0..4)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| values[i])
                .sum();
            best = best.max(v);
        }
    }
    assert!(
        (exact.best_utility - best).abs() < 1e-6,
        "reduced optimum {} vs knapsack optimum {best}",
        exact.best_utility
    );
}
