//! Property-based tests of the scheduler stack (proptest).
//!
//! Case counts are tiered so tier-1 `cargo test -q` stays fast: properties
//! that run whole solver stacks (SE engine, exhaustive enumeration) default
//! to a handful of cases, cheap algebraic properties to more. Set the
//! `PROPTEST_CASES` environment variable to override both tiers — the
//! dedicated CI job runs the full historical count (24+) that way.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::prelude::*;
use proptest::prelude::*;

/// The per-block case count: `PROPTEST_CASES` if set, else `default`.
fn cases(default: u32) -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default);
    ProptestConfig::with_cases(n)
}

/// Strategy: a random feasible MVCom instance.
fn arb_instance() -> impl Strategy<Value = Instance> {
    // 6..=24 shards, sizes 50..=2000, latencies 10..=5000 s.
    arb_instance_sized(6, 24)
}

/// Strategy: a random feasible instance small enough to enumerate
/// exhaustively (2^n subsets) without dominating tier-1 wall time.
fn arb_enumerable_instance() -> impl Strategy<Value = Instance> {
    arb_instance_sized(6, 14)
}

fn arb_instance_sized(min: usize, max: usize) -> impl Strategy<Value = Instance> {
    (min..=max)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec((50u64..=2_000, 10.0f64..=5_000.0), n..=n),
                1.0f64..=10.0,
                0usize..=3,
            )
        })
        .prop_map(|(raw, alpha, n_min)| {
            let shards: Vec<ShardInfo> = raw
                .iter()
                .enumerate()
                .map(|(i, &(txs, lat))| {
                    ShardInfo::new(
                        CommitteeId(i as u32),
                        txs,
                        TwoPhaseLatency::from_total(SimTime::from_secs(lat)),
                    )
                })
                .collect();
            // Capacity: between the n_min smallest and the full total, so
            // the instance is feasible but the knapsack can bind.
            let total: u64 = shards.iter().map(|s| s.tx_count()).sum();
            let capacity = (total / 2).max(shards.iter().map(|s| s.tx_count()).max().unwrap() * 2);
            InstanceBuilder::new()
                .alpha(alpha)
                .capacity(capacity)
                .n_min(n_min)
                .shards(shards)
                .build()
                .expect("constructed to be feasible")
        })
}

// Heavy tier: each case runs one or more full solver stacks (SE races,
// exhaustive 2^n enumeration), so the tier-1 default is small.
proptest! {
    #![proptest_config(cases(6))]

    #[test]
    fn se_always_returns_feasible_solutions(instance in arb_instance(), seed in 0u64..1_000) {
        let outcome = SeEngine::new(&instance, SeConfig::fast_test(seed))
            .expect("engine builds on feasible instances")
            .run();
        prop_assert!(instance.is_feasible(&outcome.best_solution));
        let recomputed = instance.utility(&outcome.best_solution);
        prop_assert!((recomputed - outcome.best_utility).abs() < 1e-6 * (1.0 + recomputed.abs()));
    }

    #[test]
    fn se_is_never_beaten_by_greedy_with_margin(instance in arb_instance(), seed in 0u64..100) {
        let se = SeEngine::new(&instance, SeConfig::paper(seed).with_max_iterations(600))
            .unwrap()
            .run();
        let greedy = GreedySolver::new().solve(&instance).unwrap();
        // SE explores greedy-reachable space and beyond; allow a hair of
        // stochastic slack.
        let slack = 0.02 * greedy.best_utility.abs().max(1.0);
        prop_assert!(
            se.best_utility >= greedy.best_utility - slack,
            "SE {} vs greedy {}", se.best_utility, greedy.best_utility
        );
    }

    #[test]
    fn exhaustive_dominates_every_heuristic(instance in arb_enumerable_instance(), seed in 0u64..50) {
        let exact = ExhaustiveSolver::new().solve(&instance).unwrap();
        let se = SeEngine::new(&instance, SeConfig::fast_test(seed)).unwrap().run();
        prop_assert!(se.best_utility <= exact.best_utility + 1e-6);
        let greedy = GreedySolver::new().solve(&instance).unwrap();
        prop_assert!(greedy.best_utility <= exact.best_utility + 1e-6);
        let dp = DpSolver::default().solve(&instance).unwrap();
        prop_assert!(dp.best_utility <= exact.best_utility + 1e-6);
    }

    #[test]
    fn leave_then_solve_stays_feasible(instance in arb_instance(), seed in 0u64..100) {
        let victim = instance.shards()[0].committee();
        let (trimmed, _) = match instance.without_committee(victim) {
            Ok(t) => t,
            Err(_) => return Ok(()), // trimming made it infeasible: fine
        };
        let outcome = SeEngine::new(&trimmed, SeConfig::fast_test(seed)).unwrap().run();
        prop_assert!(trimmed.is_feasible(&outcome.best_solution));
        prop_assert!(trimmed.index_of(victim).is_none());
    }
}

// Cheap tier: algebraic identities over instance/solution state — no solver
// runs, so these afford a larger default.
proptest! {
    #![proptest_config(cases(32))]

    #[test]
    fn utility_is_sum_of_selected_marginals(instance in arb_instance()) {
        // MaxArrival separability: U(f) = Σ marginal(i) over selected i.
        let n = instance.len();
        let solution = Solution::from_indices(n, (0..n).step_by(2), &instance);
        let expected: f64 = solution.iter_selected().map(|i| instance.marginal_utility(i)).sum();
        prop_assert!((instance.utility(&solution) - expected).abs() < 1e-9);
    }

    #[test]
    fn swap_deltas_commute_with_reevaluation(instance in arb_instance(), seed in 0u64..100) {
        let mut rng = mvcom::simnet::rng::master(seed);
        let n = instance.len();
        let mut solution = Solution::from_indices(n, 0..n / 2, &instance);
        let mut utility = instance.utility(&solution);
        for _ in 0..20 {
            let Some(out) = solution.random_selected(&mut rng) else { break };
            let Some(inc) = solution.random_unselected(&mut rng) else { break };
            utility += instance.swap_delta(&solution, out, inc);
            solution.swap(out, inc, &instance);
        }
        prop_assert!((utility - instance.utility(&solution)).abs() < 1e-6);
    }

    #[test]
    fn cumulative_age_is_nonnegative_and_zero_for_ddl_shard(instance in arb_instance()) {
        let n = instance.len();
        let full = Solution::from_indices(n, 0..n, &instance);
        prop_assert!(instance.cumulative_age(&full) >= 0.0);
        // The shard defining the DDL has zero age.
        let ddl_shard = (0..n)
            .max_by(|&a, &b| {
                instance.shards()[a]
                    .two_phase_latency()
                    .cmp(&instance.shards()[b].two_phase_latency())
            })
            .unwrap();
        prop_assert!(instance.age(ddl_shard).abs() < 1e-9);
    }
}

#[test]
fn se_matches_exhaustive_on_small_instances() {
    // Deterministic (non-proptest) convergence check with a real budget.
    for seed in [1u64, 7, 23] {
        let trace = Trace::generate(TraceConfig::tiny(100), seed);
        let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), seed);
        let shards = gen.next_epoch_with_replacement(12, 1).unwrap();
        let instance = InstanceBuilder::new()
            .alpha(2.0)
            .capacity(9_000)
            .n_min(3)
            .shards(shards)
            .build()
            .unwrap();
        let exact = ExhaustiveSolver::new().solve(&instance).unwrap();
        let se = SeEngine::new(&instance, SeConfig::paper(seed).with_max_iterations(1_500))
            .unwrap()
            .run();
        assert!(
            se.best_utility >= exact.best_utility - 1e-6 * exact.best_utility.abs().max(1.0),
            "seed {seed}: SE {} below optimum {}",
            se.best_utility,
            exact.best_utility
        );
    }
}
