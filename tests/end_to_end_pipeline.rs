//! End-to-end integration: dataset → Elastico protocol → MVCom scheduling
//! → final block, across multiple epochs.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::elastico::epoch::{EpochReport, WaitForAll};
use mvcom::prelude::*;

fn final_start(report: &EpochReport) -> SimTime {
    report
        .shards
        .iter()
        .filter(|s| report.final_block.included.contains(&s.committee()))
        .map(|s| s.two_phase_latency())
        .max()
        .unwrap_or(SimTime::ZERO)
}

fn admitted_age(report: &EpochReport) -> f64 {
    let start = final_start(report);
    report
        .shards
        .iter()
        .filter(|s| report.final_block.included.contains(&s.committee()))
        .map(|s| (start - s.two_phase_latency()).as_secs())
        .sum()
}

#[test]
fn mvcom_accelerates_block_formation_over_wait_for_all() {
    let seed = 99;
    let epochs = 3;

    let mut vanilla_sim = ElasticoSim::new(ElasticoConfig::with_nodes(240, 12), seed).unwrap();
    let mut mvcom_sim = ElasticoSim::new(ElasticoConfig::with_nodes(240, 12), seed).unwrap();
    let mut selector = SeSelector::adaptive(seed, 0.6);

    let mut vanilla_start_total = 0.0;
    let mut mvcom_start_total = 0.0;
    let mut vanilla_age_total = 0.0;
    let mut mvcom_age_total = 0.0;
    for epoch in 0..epochs {
        let vanilla = vanilla_sim.run_epoch_with(&mut WaitForAll).unwrap();
        let scheduled = mvcom_sim.run_epoch_with(&mut selector).unwrap();
        assert!(vanilla.final_block.committed);
        assert!(scheduled.final_block.committed);
        // Identical seeds → identical shard populations at epoch 0 only:
        // from epoch 1 on, the admitted set feeds the stage-5 randomness
        // (by design), so the two runs diverge into statistically
        // equivalent but distinct epochs.
        if epoch == 0 {
            assert_eq!(vanilla.shards, scheduled.shards);
        }
        // MVCom admits a strict, non-empty subset.
        assert!(!scheduled.final_block.included.is_empty());
        assert!(scheduled.final_block.included.len() <= vanilla.final_block.included.len());
        vanilla_start_total += final_start(&vanilla).as_secs();
        mvcom_start_total += final_start(&scheduled).as_secs();
        vanilla_age_total += admitted_age(&vanilla);
        mvcom_age_total += admitted_age(&scheduled);
    }
    // The paper's headline: eliminating stragglers lets the final
    // consensus start earlier and keeps transactions fresher.
    assert!(
        mvcom_start_total < vanilla_start_total,
        "MVCom should start the final consensus earlier ({mvcom_start_total} vs {vanilla_start_total})"
    );
    assert!(
        mvcom_age_total < vanilla_age_total * 0.5,
        "MVCom should at least halve the cumulative age ({mvcom_age_total} vs {vanilla_age_total})"
    );
}

#[test]
fn epoch_reports_are_internally_consistent() {
    let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 5).unwrap();
    for expected_epoch in 0..3u64 {
        let report = sim.run_epoch().unwrap();
        assert_eq!(report.epoch, EpochId(expected_epoch));
        // Every shard belongs to a formed committee.
        for shard in &report.shards {
            assert!(
                report.formed.iter().any(|c| c.id == shard.committee()),
                "{} has no formed committee",
                shard.committee()
            );
        }
        // Every consensus result corresponds to a formed committee.
        assert_eq!(report.consensus.len(), report.formed.len());
        // Total TXs of the block equal the sum over included shards.
        let sum: u64 = report
            .shards
            .iter()
            .filter(|s| report.final_block.included.contains(&s.committee()))
            .map(|s| s.tx_count())
            .sum();
        assert_eq!(report.final_block.total_txs, sum);
    }
}

#[test]
fn scheduling_from_real_protocol_latencies() {
    // Feed the latencies *measured* by the protocol simulator (not the
    // parametric model) into the scheduler and check the instance is sane.
    let mut sim = ElasticoSim::new(ElasticoConfig::with_nodes(240, 12), 31).unwrap();
    let report = sim.run_epoch().unwrap();
    let total: u64 = report.shards.iter().map(|s| s.tx_count()).sum();
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity((total as f64 * 0.7) as u64)
        .n_min(report.shards.len() / 2)
        .shards(report.shards.clone())
        .build()
        .unwrap();
    let outcome = SeEngine::new(&instance, SeConfig::paper(31)).unwrap().run();
    assert!(instance.is_feasible(&outcome.best_solution));
    // The scheduler must not admit more TXs than the capacity.
    assert!(outcome.best_solution.tx_total() <= instance.capacity());
    // And must include at least N_min committees.
    assert!(outcome.best_solution.selected_count() >= instance.n_min());
}

#[test]
fn wait_for_all_start_time_is_gated_by_the_straggler() {
    let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 13).unwrap();
    let report = sim.run_epoch().unwrap();
    assert_eq!(final_start(&report), report.straggler_latency());
}
