//! Cross-validation of the two latency paths (DESIGN.md §5): the
//! parametric `EpochGenerator` model used by the scheduling experiments
//! must be statistically consistent with the latencies *measured* by
//! actually running the Elastico protocol.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::prelude::*;
use mvcom::simnet::stats::Summary;

fn measured_latencies(epochs: usize, seed: u64) -> (Summary, Summary) {
    let mut sim = ElasticoSim::new(ElasticoConfig::with_nodes(300, 12), seed).unwrap();
    let mut formation = Summary::new();
    let mut consensus = Summary::new();
    for _ in 0..epochs {
        let report = sim.run_epoch().unwrap();
        for shard in &report.shards {
            formation.add(shard.latency().formation().as_secs());
            consensus.add(shard.latency().consensus().as_secs());
        }
    }
    (formation, consensus)
}

#[test]
fn measured_consensus_latency_matches_the_paper_mean() {
    // Paper §VI-A: "the expectation of consensus latency is set to 54.5
    // seconds". The protocol path is calibrated to that; allow ±30% since
    // the estimate comes from a finite sample of PBFT runs.
    let (_, consensus) = measured_latencies(8, 17);
    assert!(consensus.count() >= 100, "need enough samples");
    let mean = consensus.mean();
    assert!(
        (mean - 54.5).abs() / 54.5 < 0.30,
        "measured consensus mean {mean}s is not within 30% of 54.5s"
    );
}

#[test]
fn parametric_and_protocol_paths_agree_on_the_consensus_scale() {
    let (_, measured) = measured_latencies(6, 18);
    let parametric = LatencyConfig::paper();
    // Parametric consensus mean is exactly 54.5 by construction.
    let ratio = measured.mean() / parametric.consensus.mean();
    assert!(
        (0.6..=1.4).contains(&ratio),
        "protocol/parametric consensus ratio {ratio} out of range"
    );
}

#[test]
fn formation_dominates_consensus_in_both_paths() {
    let (formation, consensus) = measured_latencies(4, 19);
    assert!(formation.mean() > 10.0 * consensus.mean());
    let parametric = LatencyConfig::paper();
    assert!(parametric.formation.mean() > 10.0 * parametric.consensus.mean());
}

#[test]
fn protocol_latencies_are_dispersed_like_fig_2b() {
    // Fig. 2(b): both components "show a random distribution within a
    // particular range" — neither collapses to a constant.
    let (formation, consensus) = measured_latencies(6, 20);
    assert!(formation.std_dev() > 0.1 * formation.mean());
    assert!(consensus.std_dev() > 0.1 * consensus.mean());
}
