//! Property-based tests of the cross-epoch carry-over scheduler.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::core::epoch_chain::{EpochCapacity, EpochChain, EpochChainConfig};
use mvcom::prelude::*;
use proptest::prelude::*;

fn arb_epoch(base_id: u32) -> impl Strategy<Value = Vec<ShardInfo>> {
    proptest::collection::vec((200u64..=2_000, 50.0f64..=3_000.0), 8..=24).prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (txs, lat))| {
                ShardInfo::new(
                    CommitteeId(base_id + i as u32),
                    txs,
                    TwoPhaseLatency::from_total(SimTime::from_secs(lat)),
                )
            })
            .collect()
    })
}

fn config(seed: u64) -> EpochChainConfig {
    EpochChainConfig {
        capacity: EpochCapacity::PerCommittee(1_000),
        se: SeConfig::fast_test(seed),
        ..EpochChainConfig::paper(seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conservation_admitted_plus_refused_equals_arrived(
        e0 in arb_epoch(0),
        e1 in arb_epoch(1_000),
        seed in 0u64..500,
    ) {
        let mut chain = EpochChain::new(config(seed)).unwrap();
        for fresh in [e0, e1] {
            let arrived_expected = fresh.len() + chain.pending();
            let outcome = chain.run_epoch(fresh).unwrap();
            prop_assert_eq!(outcome.arrived, arrived_expected);
            prop_assert_eq!(
                outcome.admitted.len() + outcome.carried_out,
                outcome.arrived,
                "every arrived shard is either admitted or carried"
            );
            // Pending now equals the refusals queued this epoch.
            prop_assert_eq!(chain.pending(), outcome.carried_out);
        }
    }

    #[test]
    fn no_committee_is_ever_scheduled_twice_in_one_epoch(
        e0 in arb_epoch(0),
        seed in 0u64..500,
    ) {
        let mut chain = EpochChain::new(config(seed)).unwrap();
        let first = chain.run_epoch(e0.clone()).unwrap();
        // Re-submit the exact same committees fresh next epoch: carried
        // duplicates must be superseded, so arrivals equal the fresh count.
        let second = chain.run_epoch(e0).unwrap();
        let _ = first;
        let mut seen = std::collections::HashSet::new();
        for s in &second.admitted {
            prop_assert!(seen.insert(s.committee()), "duplicate {:?}", s.committee());
        }
    }

    #[test]
    fn carried_latencies_shrink_monotonically(
        e0 in arb_epoch(0),
        seed in 0u64..500,
    ) {
        let mut chain = EpochChain::new(config(seed)).unwrap();
        let outcome = chain.run_epoch(e0.clone()).unwrap();
        // Every refused shard re-enters with latency <= original.
        let originals: std::collections::HashMap<CommitteeId, SimTime> = e0
            .iter()
            .map(|s| (s.committee(), s.two_phase_latency()))
            .collect();
        // Run a second epoch with fresh ids only; the carried-in shards of
        // that epoch are exactly the refusals, with reduced latencies.
        let fresh: Vec<ShardInfo> = (0..10)
            .map(|i| {
                ShardInfo::new(
                    CommitteeId(50_000 + i),
                    800,
                    TwoPhaseLatency::from_total(SimTime::from_secs(600.0)),
                )
            })
            .collect();
        let second = chain.run_epoch(fresh).unwrap();
        for s in &second.admitted {
            if let Some(&orig) = originals.get(&s.committee()) {
                prop_assert!(
                    s.two_phase_latency() <= orig,
                    "carried shard latency grew: {:?}",
                    s.committee()
                );
            }
        }
        let _ = outcome;
    }

    #[test]
    fn epoch_outcomes_respect_constraints(
        e0 in arb_epoch(0),
        seed in 0u64..500,
    ) {
        let n = e0.len();
        let mut chain = EpochChain::new(config(seed)).unwrap();
        let outcome = chain.run_epoch(e0).unwrap();
        // Capacity: Ĉ = 1000·|arrived|.
        prop_assert!(outcome.admitted_txs <= 1_000 * outcome.arrived as u64);
        // N_min = 50% of arrivals (rounded).
        let n_min = ((outcome.arrived as f64) * 0.5).round() as usize;
        prop_assert!(outcome.admitted.len() >= n_min.min(n));
        prop_assert!(outcome.cumulative_age >= 0.0);
    }
}
