//! Failure injection across the stack: Byzantine replicas inside PBFT,
//! network partitions, and committee failures during scheduling.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::pbft::runner::{PbftConfig, PbftRunner};
use mvcom::pbft::Behavior;
use mvcom::prelude::*;
use mvcom::simnet::{rng, Network, NetworkConfig};

fn pbft_with(behaviors: &[(u32, Behavior)], n: u32, seed: u64) -> mvcom::pbft::ConsensusResult {
    let mut config = PbftConfig::new(n).unwrap();
    for &(idx, b) in behaviors {
        config = config.with_behavior(idx, b);
    }
    let mut master = rng::master(seed);
    let network = Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
    PbftRunner::new(config, network, rng::fork(&mut master, "pbft"))
        .run(Hash32::digest(b"failure-injection"))
        .unwrap()
}

#[test]
fn pbft_commits_with_boundary_fault_counts() {
    // n = 3f+1: exactly f Byzantine nodes must be tolerated.
    for (n, f) in [(4u32, 1u32), (7, 2), (10, 3), (13, 4)] {
        let silent: Vec<(u32, Behavior)> = (0..f).map(|i| (n - 1 - i, Behavior::Silent)).collect();
        let result = pbft_with(&silent, n, 1000 + u64::from(n));
        assert!(result.committed, "n={n}, f={f} should commit");
    }
}

#[test]
fn pbft_stalls_beyond_the_fault_threshold() {
    // f+1 silent followers leave fewer than 2f+1 honest voters.
    for (n, f) in [(4u32, 1u32), (7, 2)] {
        let silent: Vec<(u32, Behavior)> = (0..=f).map(|i| (n - 1 - i, Behavior::Silent)).collect();
        let mut config = PbftConfig::new(n).unwrap();
        for &(idx, b) in &silent {
            config = config.with_behavior(idx, b);
        }
        config.deadline = SimTime::from_secs(500.0);
        let mut master = rng::master(2000 + u64::from(n));
        let network = Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
        let result = PbftRunner::new(config, network, rng::fork(&mut master, "pbft"))
            .run(Hash32::digest(b"x"))
            .unwrap();
        assert!(!result.committed, "n={n} with {} faults must stall", f + 1);
    }
}

#[test]
fn partitioned_leader_is_replaced_via_view_change() {
    let n = 4u32;
    let mut master = rng::master(77);
    let mut network = Network::new(NetworkConfig::lan(n), rng::fork(&mut master, "net")).unwrap();
    // Cut the view-0 leader (node 0) off from everyone else.
    network.set_partition(vec![
        [NodeId(0)].into_iter().collect(),
        (1..n).map(NodeId).collect(),
    ]);
    let result = PbftRunner::new(
        PbftConfig::new(n).unwrap(),
        network,
        rng::fork(&mut master, "pbft"),
    )
    .run(Hash32::digest(b"partitioned"))
    .unwrap();
    assert!(
        result.committed,
        "view change should route around the partition"
    );
    assert!(result.final_view >= 1);
}

#[test]
fn committee_failure_mid_schedule_respects_theorem_2() {
    let trace = Trace::generate(TraceConfig::tiny(200), 5);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), 5);
    let shards = gen.next_epoch_with_replacement(30, 1).unwrap();
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(24_000)
        .n_min(10)
        .shards(shards)
        .build()
        .unwrap();
    let victim = instance.shards()[3].committee();
    let events = vec![TimedEvent::leave(150, victim)];
    let config = SeConfig {
        max_iterations: 600,
        convergence_window: 0,
        ..SeConfig::paper(5)
    };
    let online = run_online(&instance, config, &events, DynamicsPolicy::Trim).unwrap();
    let record = &online.events[0];
    // Theorem 2: |U_before − U_after| ≤ max_g U_g over the trimmed space,
    // which the post-event optimum upper-bounds. Verify against the
    // trimmed instance's exhaustive-free proxy: the final converged value.
    let perturbation = (record.utility_before - record.utility_after).abs();
    let trimmed_best = online
        .outcome
        .best_utility
        .abs()
        .max(record.utility_after.abs());
    assert!(
        perturbation <= record.utility_before.abs() + trimmed_best + 1e-6,
        "perturbation {perturbation} out of any plausible bound"
    );
    // The victim can never appear in the final schedule.
    let (trimmed, _) = instance.without_committee(victim).unwrap();
    assert!(trimmed.is_feasible(&online.outcome.best_solution));
}

#[test]
fn repeated_failures_shrink_the_epoch_but_keep_it_schedulable() {
    let trace = Trace::generate(TraceConfig::tiny(200), 6);
    let mut gen = EpochGenerator::new(&trace, LatencyConfig::paper(), 6);
    let shards = gen.next_epoch_with_replacement(20, 1).unwrap();
    let instance = InstanceBuilder::new()
        .alpha(1.5)
        .capacity(16_000)
        .n_min(5)
        .shards(shards)
        .build()
        .unwrap();
    let victims: Vec<CommitteeId> = instance.shards()[..5]
        .iter()
        .map(|s| s.committee())
        .collect();
    let events: Vec<TimedEvent> = victims
        .iter()
        .enumerate()
        .map(|(k, &c)| TimedEvent::leave(50 + 50 * k as u64, c))
        .collect();
    let config = SeConfig {
        max_iterations: 600,
        convergence_window: 0,
        ..SeConfig::paper(6)
    };
    let online = run_online(&instance, config, &events, DynamicsPolicy::Trim).unwrap();
    assert_eq!(online.events.len(), 5);
    assert_eq!(online.outcome.best_solution.len(), 15);
    assert!(online.outcome.best_solution.selected_count() >= 5);
}

#[test]
fn crashed_network_node_makes_ping_infinite() {
    // The §V-A failure detector: a failed committee is perceived through
    // an infinite ping latency.
    let mut master = rng::master(8);
    let mut network = Network::new(NetworkConfig::wan(8), rng::fork(&mut master, "net")).unwrap();
    assert!(!network.ping(NodeId(0), NodeId(5)).is_infinite());
    network.crash(NodeId(5));
    assert!(network.ping(NodeId(0), NodeId(5)).is_infinite());
    network.recover(NodeId(5));
    assert!(!network.ping(NodeId(0), NodeId(5)).is_infinite());
}

#[test]
fn chaos_crashed_committee_recovers_within_the_theorem_2_bound() {
    // The acceptance path of the fault-tolerant epoch pipeline, end to
    // end and unscripted: an admitted committee's submission node is
    // crashed mid-epoch under lossy links; the phi-accrual heartbeat
    // detector (not a TimedEvent) must notice, the SE engine re-solves
    // through a serialized checkpoint restore (Trim surgery), and the
    // survivors commit a final block before the consensus deadline with a
    // utility perturbation inside Theorem 2's bound.
    let crash_at = SimTime::from_secs(2_500.0);
    let recovery = RecoveryConfig {
        chaos: ChaosConfig::lossy(0.1)
            .with_crash(CrashEvent::permanent(submission_node(1), crash_at)),
        ..RecoveryConfig::paper()
    };
    let run = || {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 29).unwrap();
        let mut selector = SeRecoverySelector::adaptive(29, 0.6);
        let report = sim.run_epoch_recovering(&mut selector, &recovery).unwrap();
        (serde_json::to_string(&report).unwrap(), report, selector)
    };
    let (bytes_a, report, selector) = run();
    let (bytes_b, _, _) = run();
    assert_eq!(bytes_a, bytes_b, "fixed seed must reproduce the epoch");

    // Detection came from heartbeats observing the crash, after it.
    let victim = report.shards[1].committee();
    let robustness = report.robustness.clone().expect("recovering telemetry");
    let (failed, detected_at) = robustness
        .failures_detected
        .iter()
        .copied()
        .find(|&(c, _)| c == victim)
        .expect("the crashed committee must be detected");
    assert_eq!(failed, victim);
    assert!(
        detected_at >= crash_at,
        "detection cannot precede the crash"
    );

    // The survivors still commit, before the deadline, without the victim.
    assert!(report.final_block.committed);
    assert!(!report.final_block.included.is_empty());
    assert!(!report.final_block.included.contains(&victim));
    assert!(
        report.final_block.consensus_latency <= ElasticoConfig::small_test().consensus_deadline
    );

    // The re-solve went through the checkpoint/restore path and its
    // utility drop respects Theorem 2: |U_before − U_after| is bounded by
    // the best utility reachable in the trimmed space, which the
    // converged post-trim optimum witnesses.
    assert!(selector.chains_restored() > 0, "restore path must run");
    let record = selector
        .events()
        .iter()
        .find(|e| !e.is_join)
        .expect("the trim must be recorded");
    let perturbation = (record.utility_before - record.utility_after).abs();
    let trimmed_best = selector
        .current_best_utility()
        .unwrap_or(record.utility_after)
        .max(record.utility_after);
    assert!(
        perturbation <= mvcom::core::theory::perturbation_bound(trimmed_best) + 1e-6,
        "perturbation {perturbation} exceeds the Theorem 2 bound {trimmed_best}"
    );
}
