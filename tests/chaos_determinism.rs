//! Determinism of the fault-tolerant epoch pipeline.
//!
//! The chaos injector, the phi-accrual failure detector, and the recovery
//! runner all draw from forked seeded RNG streams, so a fixed seed must
//! reproduce a recovering epoch *byte for byte* — including every dropped
//! message, every missed heartbeat, and every re-solve.

// Test/example code: unwrap is fine here (the workspace-level
// `clippy::unwrap_used` warning targets library code; see mvcom-lint P1).
#![allow(clippy::unwrap_used)]
use mvcom::prelude::*;
use proptest::prelude::*;

/// Runs one recovering epoch with the trivial survivors-only strategy and
/// returns its serialized report.
fn survivors_report_json(seed: u64, recovery: &RecoveryConfig) -> String {
    let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), seed).unwrap();
    let report = sim
        .run_epoch_recovering(&mut SurvivorsOnly::default(), recovery)
        .unwrap();
    serde_json::to_string(&report).unwrap()
}

proptest! {
    // Each case runs two full epochs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_chaos_seed_reproduces_the_epoch_byte_for_byte(
        seed in 0u64..1_000,
        drop_prob in 0.0f64..0.45,
    ) {
        let recovery = RecoveryConfig {
            chaos: ChaosConfig::lossy(drop_prob),
            ..RecoveryConfig::paper()
        };
        prop_assert_eq!(
            survivors_report_json(seed, &recovery),
            survivors_report_json(seed, &recovery),
        );
    }
}

#[test]
fn se_recovery_pipeline_is_deterministic_under_crash_and_loss() {
    // The full MVCom path: lossy links plus a mid-epoch permanent crash,
    // admission by the SE engine with checkpoint-restore on each failure.
    let recovery = RecoveryConfig {
        chaos: ChaosConfig::lossy(0.15).with_crash(CrashEvent::permanent(
            submission_node(1),
            SimTime::from_secs(2_500.0),
        )),
        ..RecoveryConfig::paper()
    };
    let run = || {
        let mut sim = ElasticoSim::new(ElasticoConfig::small_test(), 41).unwrap();
        let mut selector = SeRecoverySelector::adaptive(41, 0.6);
        let report = sim.run_epoch_recovering(&mut selector, &recovery).unwrap();
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn recovering_runner_does_not_perturb_the_epoch_stages() {
    // The recovering runner forks its submission-network and chaos RNG
    // streams *after* the stage 1–3 forks, so for the same sim seed the
    // formed committees and measured shards are byte-identical to the
    // vanilla wait-for-all epoch — fault tolerance is pay-as-you-go.
    let mut vanilla = ElasticoSim::new(ElasticoConfig::small_test(), 97).unwrap();
    let baseline = vanilla.run_epoch().unwrap();
    let mut recovering = ElasticoSim::new(ElasticoConfig::small_test(), 97).unwrap();
    let report = recovering
        .run_epoch_recovering(&mut SurvivorsOnly::default(), &RecoveryConfig::paper())
        .unwrap();
    assert_eq!(
        serde_json::to_string(&baseline.formed).unwrap(),
        serde_json::to_string(&report.formed).unwrap(),
    );
    assert_eq!(
        serde_json::to_string(&baseline.shards).unwrap(),
        serde_json::to_string(&report.shards).unwrap(),
    );
    // Fault-free recovery admits the same committees wait-for-all does.
    assert_eq!(baseline.final_block.included, report.final_block.included);
}
